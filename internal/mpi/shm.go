// Shared-memory transport: mmap-backed SPSC ring buffers for co-located
// ranks. Every directed (sender, receiver) pair owns one power-of-2 ring
// carved out of a single MAP_SHARED region, so the data path is exactly
// what two processes on one node would use — a file-backed mapping both
// sides address directly — while notification rides in-process wakeup
// channels (the stand-in for a futex).
//
// Ring protocol (seqlock-style publication):
//
//   - head and tail are monotonically increasing byte counters in the
//     ring's 128-byte header block (one cache line each). The producer
//     owns tail, the consumer owns head; each side reads the other's
//     counter with an acquire load and publishes its own with a release
//     store, so a record's bytes are fully written before the tail store
//     that makes them visible — the consumer can never observe a
//     half-written record.
//   - A record is an 8-byte descriptor word (payload length, type, flags,
//     wrap bit), a 24-byte fixed header (ctx, src, tag, seq), optional
//     extensions (chunk lane: stream id + total; trace context), and the
//     payload, padded to 8 bytes. Records never straddle the ring end: a
//     producer that would wrap emits a wrap marker (descriptor word with
//     the wrap bit) and restarts at offset zero.
//   - Payloads above the chunk threshold stream as bulk-lane chunk
//     records, reassembled into one arena buffer pinned in the receiving
//     mailbox (the same mechanism as TCP chunked streaming). A message
//     larger than the ring therefore still flows, the ring never holds
//     more than one chunk of it at a time, and the contiguous zero-copy
//     fast path feeds chunks straight from the caller's buffer with no
//     staging copy.
package mpi

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"syscall"
	"time"
	"unsafe"

	"ddr/internal/obs"
)

// ErrBadOption is wrapped by transport-option validation failures: a
// zero-or-negative size, depth, or threshold that would otherwise
// surface as a panic or a wedged writer goroutine deep inside the
// transport. Match with errors.Is(err, mpi.ErrBadOption).
var ErrBadOption = errors.New("mpi: invalid transport option")

// ShmOptions tunes the shared-memory transport. The zero value selects
// the defaults: 1 MiB rings, 256 KiB chunk threshold, ring/4 chunks.
// Bigger rings are not faster: a 1 MiB ring (and its 256 KiB chunks)
// stays cache-resident, and measured throughput drops on both the
// small-message storm and the 64 MiB bulk shape at 2-4 MiB rings.
type ShmOptions struct {
	// RingSize is the per-(sender,receiver) ring capacity in bytes; it
	// must be a power of two and at least 4 KiB. 0 selects the 1 MiB
	// default. A world of n ranks maps n*n rings.
	RingSize int
	// ChunkThreshold is the payload size above which a message streams
	// as bulk-lane chunk records instead of one record. 0 selects the
	// 256 KiB default; negative disables chunking (each message must
	// then fit in the ring whole).
	ChunkThreshold int
	// ChunkSize is the payload size of each bulk-lane chunk record. 0
	// selects ring/4; values are clamped to ring/4 so a chunk plus its
	// header can never deadlock a ring.
	ChunkSize int
}

const (
	defaultShmRing           = 1 << 20
	defaultShmChunkThreshold = 256 << 10
	minShmRing               = 4 << 10
	shmRingHeaderBytes       = 128 // head + tail, one cache line apart
)

// Validate rejects option values the transport cannot run with, with a
// typed error naming the field. The zero value is always valid.
func (o ShmOptions) Validate() error {
	if o.RingSize < 0 {
		return fmt.Errorf("%w: ShmOptions.RingSize %d is negative", ErrBadOption, o.RingSize)
	}
	if o.RingSize > 0 && (o.RingSize < minShmRing || o.RingSize&(o.RingSize-1) != 0) {
		return fmt.Errorf("%w: ShmOptions.RingSize %d must be a power of two >= %d", ErrBadOption, o.RingSize, minShmRing)
	}
	if o.ChunkSize < 0 {
		return fmt.Errorf("%w: ShmOptions.ChunkSize %d is negative", ErrBadOption, o.ChunkSize)
	}
	return nil
}

// shmConfig is ShmOptions with every default resolved.
type shmConfig struct {
	ringSize       int
	chunk          bool
	chunkThreshold int
	chunkSize      int
}

func (o ShmOptions) resolve() shmConfig {
	cfg := shmConfig{
		ringSize:       o.RingSize,
		chunk:          o.ChunkThreshold >= 0,
		chunkThreshold: o.ChunkThreshold,
		chunkSize:      o.ChunkSize,
	}
	if cfg.ringSize == 0 {
		cfg.ringSize = defaultShmRing
	}
	if cfg.chunkThreshold == 0 {
		cfg.chunkThreshold = defaultShmChunkThreshold
	}
	if cfg.chunkSize <= 0 || cfg.chunkSize > cfg.ringSize/4 {
		cfg.chunkSize = cfg.ringSize / 4
	}
	// A chunk threshold beyond what one record can carry would wedge the
	// producer: chunking must engage before a record outgrows the ring.
	if max := cfg.ringSize - shmMaxHeader - shmWordSize; cfg.chunk && cfg.chunkThreshold > max {
		cfg.chunkThreshold = max
	}
	return cfg
}

// Record descriptor word layout (little endian):
//
//	bits  0..31  payload length
//	bits 32..39  record type (shmRecMsg / shmRecChunk)
//	bits 40..47  flags (shmFlagTrace)
//	bit  63      wrap marker: skip to ring start, no record follows
const (
	shmWordSize  = 8
	shmRecHeader = 24 // ctx u32, src u32, tag u32, pad u32, seq u64
	shmChunkExt  = 16 // stream u32, pad u32, total u64
	shmTraceExt  = 16 // exchange u64, round u32, span u32
	shmMaxHeader = shmWordSize + shmRecHeader + shmChunkExt + shmTraceExt

	shmRecMsg   byte = 1
	shmRecChunk byte = 2

	shmFlagTrace byte = 0x01
	shmWrapBit        = uint64(1) << 63
)

// errShmProto classifies malformed ring records — only reachable through
// memory corruption or a decoder bug, but the decoder still refuses to
// walk garbage.
var errShmProto = errors.New("mpi: shm ring protocol error")

// shmRecord is the decoded form of one ring record header.
type shmRecord struct {
	typ    byte
	flags  byte
	n      int // payload bytes
	ctx    uint32
	src    int
	tag    int
	seq    uint64
	stream uint32 // chunk records only
	total  uint64 // chunk records only
	tc     TraceContext
	hdr    int // header bytes consumed (payload starts here)
}

// decodeShmRecord parses one record header from the start of b (which
// must begin at a record boundary). It returns the parsed header; the
// caller slices the payload from b[rec.hdr : rec.hdr+rec.n]. Wrap
// markers decode as typ 0 with wrap=true.
func decodeShmRecord(b []byte) (rec shmRecord, wrap bool, err error) {
	if len(b) < shmWordSize {
		return rec, false, fmt.Errorf("%w: truncated descriptor word", errShmProto)
	}
	word := binary.LittleEndian.Uint64(b)
	if word&shmWrapBit != 0 {
		return rec, true, nil
	}
	rec.n = int(uint32(word))
	rec.typ = byte(word >> 32)
	rec.flags = byte(word >> 40)
	if rec.typ != shmRecMsg && rec.typ != shmRecChunk {
		return rec, false, fmt.Errorf("%w: unknown record type %d", errShmProto, rec.typ)
	}
	if rec.flags&^shmFlagTrace != 0 {
		return rec, false, fmt.Errorf("%w: unknown record flags %#x", errShmProto, rec.flags)
	}
	need := shmWordSize + shmRecHeader
	if rec.typ == shmRecChunk {
		need += shmChunkExt
	}
	if rec.flags&shmFlagTrace != 0 {
		need += shmTraceExt
	}
	if len(b) < need {
		return rec, false, fmt.Errorf("%w: truncated record header (%d of %d bytes)", errShmProto, len(b), need)
	}
	h := b[shmWordSize:]
	rec.ctx = binary.LittleEndian.Uint32(h)
	rec.src = int(binary.LittleEndian.Uint32(h[4:]))
	rec.tag = int(int32(binary.LittleEndian.Uint32(h[8:])))
	rec.seq = binary.LittleEndian.Uint64(h[16:])
	h = h[shmRecHeader:]
	if rec.typ == shmRecChunk {
		rec.stream = binary.LittleEndian.Uint32(h)
		rec.total = binary.LittleEndian.Uint64(h[8:])
		if rec.total == 0 || rec.total > maxChunkTotal {
			return rec, false, fmt.Errorf("%w: chunk stream of %d bytes out of range", errShmProto, rec.total)
		}
		h = h[shmChunkExt:]
	}
	if rec.flags&shmFlagTrace != 0 {
		rec.tc = TraceContext{
			Exchange: binary.LittleEndian.Uint64(h),
			Round:    binary.LittleEndian.Uint32(h[8:]),
			Span:     binary.LittleEndian.Uint32(h[12:]),
		}
	}
	rec.hdr = need
	if rec.n < 0 || uint64(rec.n) > uint64(len(b)-need) {
		return rec, false, fmt.Errorf("%w: %d-byte payload overruns record", errShmProto, rec.n)
	}
	return rec, false, nil
}

// shmRing is one directed ring: a view over the shared region plus the
// in-process wakeup channel standing in for a futex on the producer
// side (the consumer side shares one wakeup per receiving rank). The
// ring protocol itself is SPSC; mu serializes the possibly-concurrent
// senders of one rank (the transport contract allows concurrent Sends)
// down to the single producer the protocol requires, and in doing so
// also preserves per-(sender,receiver) message order across chunked
// streams.
type shmRing struct {
	hdr  []byte // 128-byte header block (head at 0, tail at 64)
	data []byte // power-of-2 payload area
	mask uint64

	mu sync.Mutex // serializes producers; consumer never takes it

	// space is nudged by the consumer after it advances head, releasing
	// a producer blocked on a full ring.
	space chan struct{}
}

func (r *shmRing) headPtr() *uint64 { return (*uint64)(unsafe.Pointer(&r.hdr[0])) }
func (r *shmRing) tailPtr() *uint64 { return (*uint64)(unsafe.Pointer(&r.hdr[64])) }

func (r *shmRing) loadHead() uint64 { return atomic.LoadUint64(r.headPtr()) }
func (r *shmRing) loadTail() uint64 { return atomic.LoadUint64(r.tailPtr()) }

// occupied returns the bytes currently committed and unconsumed.
func (r *shmRing) occupied() uint64 { return r.loadTail() - r.loadHead() }

// shmPad rounds a record length up to the 8-byte ring alignment.
func shmPad(n int) int { return (n + 7) &^ 7 }

// reserve blocks until at least need contiguous bytes are writable at
// the tail, emitting a wrap marker when the record would straddle the
// ring end. It returns the write position, or an error when the world
// shuts down while waiting. Producer-side only.
func (r *shmRing) reserve(need int, w *shmWorld) (pos uint64, err error) {
	size := uint64(len(r.data))
	tail := r.loadTail()
	spins := 0
	for {
		head := r.loadHead()
		free := size - (tail - head)
		at := tail & r.mask
		contig := size - at
		required := uint64(need)
		if uint64(need) > contig {
			// Wrap marker consumes the ring tail; the record restarts at
			// offset zero.
			required = contig + uint64(need)
		}
		if free >= required {
			if uint64(need) > contig {
				binary.LittleEndian.PutUint64(r.data[at:], shmWrapBit)
				tail += contig
				atomic.StoreUint64(r.tailPtr(), tail)
				w.wraps.Add(1)
				continue
			}
			return tail, nil
		}
		if w.isClosed() {
			return 0, ErrClosed
		}
		if spins < 64 {
			spins++
			runtime.Gosched()
			continue
		}
		w.backpressure.Add(1)
		select {
		case <-r.space:
		case <-w.stop:
			return 0, ErrClosed
		case <-time.After(100 * time.Microsecond):
			// Timeout bounds the lost-wakeup window; the loop re-checks.
		}
	}
}

// publish commits len bytes written at the reserved position.
func (r *shmRing) publish(pos uint64, n int) {
	atomic.StoreUint64(r.tailPtr(), pos+uint64(n))
}

// writeRecord reserves, fills, and publishes one record whose payload is
// copied from payload (which may be nil for zero-length messages).
func (r *shmRing) writeRecord(w *shmWorld, e *envelope, typ byte, stream uint32, total uint64, payload []byte) error {
	flags := byte(0)
	hdrLen := shmWordSize + shmRecHeader
	if typ == shmRecChunk {
		hdrLen += shmChunkExt
	}
	if e.tc.Exchange != 0 {
		flags = shmFlagTrace
		hdrLen += shmTraceExt
	}
	rec := shmPad(hdrLen + len(payload))
	pos, err := r.reserve(rec, w)
	if err != nil {
		return err
	}
	at := pos & r.mask
	b := r.data[at:]
	word := uint64(uint32(len(payload))) | uint64(typ)<<32 | uint64(flags)<<40
	// The descriptor word is written along with the rest of the header
	// and payload before the tail store in publish makes any of it
	// visible; the release/acquire pair on tail is the seqlock edge.
	binary.LittleEndian.PutUint64(b, word)
	h := b[shmWordSize:]
	binary.LittleEndian.PutUint32(h, e.ctx)
	binary.LittleEndian.PutUint32(h[4:], uint32(e.src))
	binary.LittleEndian.PutUint32(h[8:], uint32(int32(e.tag)))
	binary.LittleEndian.PutUint32(h[12:], 0)
	binary.LittleEndian.PutUint64(h[16:], e.seq)
	h = h[shmRecHeader:]
	if typ == shmRecChunk {
		binary.LittleEndian.PutUint32(h, stream)
		binary.LittleEndian.PutUint32(h[4:], 0)
		binary.LittleEndian.PutUint64(h[8:], total)
		h = h[shmChunkExt:]
	}
	if flags&shmFlagTrace != 0 {
		binary.LittleEndian.PutUint64(h, e.tc.Exchange)
		binary.LittleEndian.PutUint32(h[8:], e.tc.Round)
		binary.LittleEndian.PutUint32(h[12:], e.tc.Span)
	}
	copy(b[hdrLen:hdrLen+len(payload)], payload)
	r.publish(pos, rec)
	return nil
}

// shmStream is a bulk-lane chunk stream being reassembled on the
// consumer side, keyed by (sender, stream id).
type shmStream struct {
	env  envelope
	fill int
}

// ShmStats is a point-in-time snapshot of a shared-memory world's
// transport counters.
type ShmStats struct {
	BytesOut, BytesIn  int64 // payload bytes through the rings
	Records            int64 // records published (messages and chunks)
	ChunksOut, ChunksIn int64
	Wraps              int64 // wrap markers emitted
	BackpressureEvents int64 // producer waits on a full ring
	RingOccupancy      int64 // bytes currently committed and unconsumed
}

// shmWorld is one world's shared region: n*n rings, one consumer
// goroutine per rank, and the counters every rank's transport view
// mirrors into its telemetry.
type shmWorld struct {
	n     int
	cfg   shmConfig
	mem   []byte // the MAP_SHARED region (nil after close)
	mmap  bool   // mem came from syscall.Mmap (vs heap fallback)
	rings []*shmRing // [src*n+dst]
	boxes []*mailbox
	wakes []chan struct{} // per-receiver wakeup

	stop    chan struct{}
	closed  atomic.Bool
	wg      sync.WaitGroup // consumer goroutines
	closeMu sync.Mutex

	bytesOut, bytesIn   atomic.Int64
	records             atomic.Int64
	chunksOut, chunksIn atomic.Int64
	wraps               atomic.Int64
	backpressure        atomic.Int64
	occupancy           atomic.Int64

	// Per-rank obs mirrors, attached via AttachTelemetry; nil entries
	// cost one atomic load on the hot path.
	occGauge []atomic.Pointer[obs.Gauge]
	inCtr    []atomic.Pointer[obs.Counter]
	outCtr   []atomic.Pointer[obs.Counter]
}

func (w *shmWorld) isClosed() bool { return w.closed.Load() }

// Stats snapshots the world-wide transport counters.
func (w *shmWorld) stats() ShmStats {
	return ShmStats{
		BytesOut:           w.bytesOut.Load(),
		BytesIn:            w.bytesIn.Load(),
		Records:            w.records.Load(),
		ChunksOut:          w.chunksOut.Load(),
		ChunksIn:           w.chunksIn.Load(),
		Wraps:              w.wraps.Load(),
		BackpressureEvents: w.backpressure.Load(),
		RingOccupancy:      w.occupancy.Load(),
	}
}

// newShmWorld maps the shared region and starts one consumer per rank.
// boxes[i] is rank i's mailbox (shared with the caller, who closes them).
func newShmWorld(n int, opts ShmOptions, boxes []*mailbox) (*shmWorld, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	cfg := opts.resolve()
	total := n * n * (shmRingHeaderBytes + cfg.ringSize)
	mem, mapped, err := shmMap(total)
	if err != nil {
		return nil, err
	}
	w := &shmWorld{
		n:        n,
		cfg:      cfg,
		mem:      mem,
		mmap:     mapped,
		rings:    make([]*shmRing, n*n),
		boxes:    boxes,
		wakes:    make([]chan struct{}, n),
		stop:     make(chan struct{}),
		occGauge: make([]atomic.Pointer[obs.Gauge], n),
		inCtr:    make([]atomic.Pointer[obs.Counter], n),
		outCtr:   make([]atomic.Pointer[obs.Counter], n),
	}
	hdrBase := 0
	dataBase := n * n * shmRingHeaderBytes
	for i := range w.rings {
		w.rings[i] = &shmRing{
			hdr:   mem[hdrBase+i*shmRingHeaderBytes : hdrBase+(i+1)*shmRingHeaderBytes],
			data:  mem[dataBase+i*cfg.ringSize : dataBase+(i+1)*cfg.ringSize],
			mask:  uint64(cfg.ringSize - 1),
			space: make(chan struct{}, 1),
		}
	}
	for d := 0; d < n; d++ {
		w.wakes[d] = make(chan struct{}, 1)
		w.wg.Add(1)
		go w.consume(d)
	}
	return w, nil
}

// shmMap obtains the shared region: a MAP_SHARED mapping of an unlinked
// temp file (the honest two-process data path), falling back to plain
// heap memory where mmap is unavailable.
//
// The backing file MUST live on tmpfs. A MAP_SHARED mapping of a
// disk-backed file is subject to dirty-page writeback: the kernel
// periodically cleans and write-protects the pages, so every store
// after a writeback cycle takes a fault to re-mark the page dirty. On
// a 64-rank storm that turned ring writes into a fault storm roughly
// 500x slower than the tmpfs path. /dev/shm is tmpfs on any Linux
// worth running on; only if it is missing do we fall back to TMPDIR
// (accepting the writeback cost) and finally to heap memory.
func shmMap(size int) (mem []byte, mapped bool, err error) {
	f, err := os.CreateTemp("/dev/shm", "ddr-shm-*")
	if err != nil {
		if f, err = os.CreateTemp("", "ddr-shm-*"); err != nil {
			return make([]byte, size), false, nil
		}
	}
	defer f.Close()
	os.Remove(f.Name())
	if err := f.Truncate(int64(size)); err != nil {
		return make([]byte, size), false, nil
	}
	mem, err = syscall.Mmap(int(f.Fd()), 0, size, syscall.PROT_READ|syscall.PROT_WRITE, syscall.MAP_SHARED)
	if err != nil {
		return make([]byte, size), false, nil
	}
	return mem, true, nil
}

// ring returns the (src -> dst) ring.
func (w *shmWorld) ring(src, dst int) *shmRing { return w.rings[src*w.n+dst] }

// nudge wakes dst's consumer (non-blocking; a pending nudge coalesces).
func (w *shmWorld) nudge(dst int) {
	select {
	case w.wakes[dst] <- struct{}{}:
	default:
	}
}

// addOccupancy tracks committed-but-unconsumed bytes, mirrored into
// dst's ring-occupancy gauge when telemetry is attached.
func (w *shmWorld) addOccupancy(dst int, n int64) {
	w.occupancy.Add(n)
	w.occGauge[dst].Load().Add(n)
}

// consume is rank dst's consumer goroutine: it drains every inbound ring
// into the rank's mailbox, blocking on the wakeup channel when idle.
func (w *shmWorld) consume(dst int) {
	defer w.wg.Done()
	streams := make(map[uint64]*shmStream)
	box := w.boxes[dst]
	for {
		progress := false
		for src := 0; src < w.n; src++ {
			if w.drainRing(src, dst, box, streams) {
				progress = true
			}
		}
		if progress {
			continue
		}
		select {
		case <-w.wakes[dst]:
		case <-w.stop:
			// Final drain: deliver everything already committed so a
			// clean shutdown loses nothing, then release reassembly state.
			for src := 0; src < w.n; src++ {
				w.drainRing(src, dst, box, streams)
			}
			for _, st := range streams {
				box.removePending(st.env.pend)
			}
			return
		}
	}
}

// drainRing consumes every committed record in the (src -> dst) ring,
// reporting whether it made progress.
func (w *shmWorld) drainRing(src, dst int, box *mailbox, streams map[uint64]*shmStream) bool {
	r := w.ring(src, dst)
	head := r.loadHead()
	tail := r.loadTail()
	if head == tail {
		return false
	}
	for head != tail {
		at := head & r.mask
		rec, wrap, err := decodeShmRecord(r.data[at:])
		if wrap {
			// Wrap bytes are dead space, not records; the occupancy gauge
			// tracks record bytes only, so nothing to account here.
			head += uint64(len(r.data)) - at
			atomic.StoreUint64(r.headPtr(), head)
			continue
		}
		if err != nil {
			// A corrupt ring is unrecoverable; drop everything committed
			// and warn. Only reachable through memory corruption.
			obs.Warnf("mpi: shm ring %d->%d: %v (dropping ring contents)", src, dst, err)
			atomic.StoreUint64(r.headPtr(), tail)
			w.addOccupancy(dst, -int64(tail-head))
			break
		}
		payload := r.data[at+uint64(rec.hdr) : at+uint64(rec.hdr)+uint64(rec.n)]
		w.deliver(dst, box, streams, rec, payload)
		step := uint64(shmPad(rec.hdr + rec.n))
		head += step
		atomic.StoreUint64(r.headPtr(), head)
		w.addOccupancy(dst, -int64(step))
		w.bytesIn.Add(int64(rec.n))
		w.inCtr[dst].Load().Add(int64(rec.n))
	}
	// Release a producer blocked on this ring.
	select {
	case r.space <- struct{}{}:
	default:
	}
	return true
}

// deliver lands one decoded record in the mailbox: whole messages copy
// into an arena buffer; chunk records reassemble into a pinned envelope.
func (w *shmWorld) deliver(dst int, box *mailbox, streams map[uint64]*shmStream, rec shmRecord, payload []byte) {
	e := envelope{ctx: rec.ctx, src: rec.src, tag: rec.tag, seq: rec.seq, tc: rec.tc}
	if rec.typ == shmRecMsg {
		if rec.n > 0 {
			e.data = GetBuffer(rec.n)
			copy(e.data, payload)
		}
		box.put(e)
		return
	}
	w.chunksIn.Add(1)
	key := uint64(rec.src)<<32 | uint64(rec.stream)
	st, ok := streams[key]
	if !ok {
		e.data = GetBuffer(int(rec.total))
		e.pend = &chunkPending{}
		st = &shmStream{env: e}
		streams[key] = st
		// Pin the message's matching position now; it becomes matchable
		// when the last chunk lands.
		box.put(st.env)
	}
	if st.fill+rec.n > len(st.env.data) {
		obs.Warnf("mpi: shm chunk stream %d->%d overflows (%d+%d of %d); dropping stream",
			rec.src, dst, st.fill, rec.n, len(st.env.data))
		box.removePending(st.env.pend)
		delete(streams, key)
		return
	}
	copy(st.env.data[st.fill:], payload)
	st.fill += rec.n
	if st.fill == len(st.env.data) {
		box.complete(st.env.pend)
		delete(streams, key)
	}
}

// close stops the consumers and unmaps the region. Mailboxes belong to
// the launcher, which closes them after every rank returned.
func (w *shmWorld) close() error {
	w.closeMu.Lock()
	defer w.closeMu.Unlock()
	if w.closed.Swap(true) {
		return nil
	}
	close(w.stop)
	w.wg.Wait()
	if w.mmap {
		syscall.Munmap(w.mem) //nolint:errcheck // unmap on teardown is best effort
	}
	w.mem = nil
	return nil
}

// shmTransport is one rank's view of the shared-memory world. src is
// the rank's index within the world (equal to its world rank in a flat
// shm launch; a node-local index under the hierarchical transport).
type shmTransport struct {
	w          *shmWorld
	src        int
	nextStream atomic.Uint32
}

// Stats snapshots the world-wide shm transport counters (shared by all
// ranks of the world).
func (t *shmTransport) Stats() ShmStats { return t.w.stats() }

func (t *shmTransport) send(dst int, e envelope) error {
	if dst < 0 || dst >= t.w.n {
		return fmt.Errorf("mpi: shm world rank %d out of range", dst)
	}
	if t.w.isClosed() {
		return ErrClosed
	}
	err := t.write(dst, e)
	if e.data != nil {
		// The transport owns eager-copy payloads; the ring copy is the
		// delivery, so the staging buffer recycles immediately.
		PutBuffer(e.data)
	}
	return err
}

// sendZeroCopy implements the zeroCopySender capability: payloads above
// the chunk threshold stream straight from the caller's buffer into the
// ring — no staging copy, no arena allocation. The ring write is
// synchronous, so by the time write returns the caller's buffer is
// reusable, which is exactly Send's contract.
func (t *shmTransport) sendZeroCopy(dst int, e envelope) (bool, error) {
	if !t.w.cfg.chunk || len(e.data) <= t.w.cfg.chunkThreshold {
		return false, nil
	}
	if dst < 0 || dst >= t.w.n {
		return true, fmt.Errorf("mpi: shm world rank %d out of range", dst)
	}
	if t.w.isClosed() {
		return true, ErrClosed
	}
	return true, t.write(dst, e)
}

// write moves one message into the (src -> dst) ring, chunking payloads
// above the threshold so they interleave with ring capacity. The ring's
// producer lock is held across the whole message, serializing concurrent
// senders and keeping chunk streams contiguous in publication order.
func (t *shmTransport) write(dst int, e envelope) error {
	w := t.w
	r := w.ring(t.src, dst)
	cfg := &w.cfg
	if !cfg.chunk || len(e.data) <= cfg.chunkThreshold {
		if len(e.data) > cfg.ringSize-shmMaxHeader-shmWordSize {
			return fmt.Errorf("mpi: %d-byte message with shm chunking disabled: %w", len(e.data), ErrFrameTooLarge)
		}
		r.mu.Lock()
		err := r.writeRecord(w, &e, shmRecMsg, 0, 0, e.data)
		r.mu.Unlock()
		if err != nil {
			return err
		}
		w.records.Add(1)
		n := int64(len(e.data))
		w.bytesOut.Add(n)
		w.outCtr[t.src].Load().Add(n)
		w.addOccupancy(dst, int64(shmPad(shmWordSize+shmRecHeader+shmTraceExtIf(&e)+len(e.data))))
		w.nudge(dst)
		return nil
	}
	stream := t.nextStream.Add(1)
	total := uint64(len(e.data))
	r.mu.Lock()
	defer r.mu.Unlock()
	for off := 0; off < len(e.data); {
		n := len(e.data) - off
		if n > cfg.chunkSize {
			n = cfg.chunkSize
		}
		if err := r.writeRecord(w, &e, shmRecChunk, stream, total, e.data[off:off+n]); err != nil {
			return err
		}
		w.records.Add(1)
		w.chunksOut.Add(1)
		w.bytesOut.Add(int64(n))
		w.outCtr[t.src].Load().Add(int64(n))
		w.addOccupancy(dst, int64(shmPad(shmWordSize+shmRecHeader+shmChunkExt+shmTraceExtIf(&e)+n)))
		off += n
		w.nudge(dst)
	}
	return nil
}

// shmTraceExtIf accounts the trace extension in occupancy bookkeeping.
func shmTraceExtIf(e *envelope) int {
	if e.tc.Exchange != 0 {
		return shmTraceExt
	}
	return 0
}

func (t *shmTransport) close() error { return t.w.close() }

// attachObs mirrors this rank's shm activity into the telemetry's
// instruments (nil detaches).
func (t *shmTransport) attachObs(tel *Telemetry) {
	if tel == nil {
		t.w.occGauge[t.src].Store(nil)
		t.w.inCtr[t.src].Store(nil)
		t.w.outCtr[t.src].Store(nil)
		return
	}
	t.w.occGauge[t.src].Store(tel.shmOccupancy)
	t.w.inCtr[t.src].Store(tel.shmBytesIn)
	t.w.outCtr[t.src].Store(tel.shmBytesOut)
}

// RunShm executes body on n ranks over the shared-memory ring transport.
func RunShm(n int, body func(c *Comm) error) error {
	return Launch(n, body, WithTransport(TransportShm))
}

// launchShm runs body on n in-process ranks whose traffic crosses the
// mmap-backed ring transport; see Launch for the contract.
func launchShm(n int, opts ShmOptions, inj FaultInjector, body func(c *Comm) error) error {
	return launchShmTopo(n, nil, opts, inj, body)
}

// launchShmTopo is launchShm with an optional topology recorded on the
// communicators — the degenerate (single-node) hierarchical launch,
// where the topology matters only as a plan-cache key.
func launchShmTopo(n int, topo *Topology, opts ShmOptions, inj FaultInjector, body func(c *Comm) error) error {
	if n <= 0 {
		return fmt.Errorf("mpi: world size %d must be positive", n)
	}
	boxes := make([]*mailbox, n)
	for i := range boxes {
		boxes[i] = newMailbox()
	}
	w, err := newShmWorld(n, opts, boxes)
	if err != nil {
		return err
	}
	trs := make([]transport, n)
	for rank := 0; rank < n; rank++ {
		var tr transport = &shmTransport{w: w, src: rank}
		if inj != nil {
			tr = newFaultTransport(tr, inj, rank, func(dst, src int, err error) {
				if dst >= 0 && dst < len(boxes) {
					boxes[dst].markLost(src, err)
				}
			})
		}
		trs[rank] = tr
	}
	errs := make([]error, n)
	var wg sync.WaitGroup
	for rank := 0; rank < n; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			c := &Comm{
				rank:     rank,
				group:    identityGroup(n),
				tr:       trs[rank],
				box:      boxes[rank],
				counters: newTraffic(n),
				topo:     topo,
			}
			c.world = c
			if err := body(c); err != nil {
				errs[rank] = fmt.Errorf("rank %d: %w", rank, err)
				for _, b := range boxes {
					b.close(fmt.Errorf("mpi: rank %d failed: %w", rank, err))
				}
			}
		}(rank)
	}
	wg.Wait()
	for _, tr := range trs {
		tr.close() //nolint:errcheck // world close is idempotent
	}
	for _, b := range boxes {
		b.close(nil)
	}
	return errors.Join(errs...)
}
