package mpi

import "sync/atomic"

// TrafficStats is a snapshot of one rank's traffic through its transport,
// accumulated across the world communicator and everything split from it.
// Self-deliveries through the transport are counted; purely local
// pack/unpack shortcuts (the alltoallw self exchange) are not.
type TrafficStats struct {
	MessagesSent int64
	BytesSent    int64
	MessagesRecv int64
	BytesRecv    int64
}

// traffic holds the live counters shared by a rank's communicators.
type traffic struct {
	msgsSent  atomic.Int64
	bytesSent atomic.Int64
	msgsRecv  atomic.Int64
	bytesRecv atomic.Int64
}

func (t *traffic) countSend(n int) {
	if t == nil {
		return
	}
	t.msgsSent.Add(1)
	t.bytesSent.Add(int64(n))
}

func (t *traffic) countRecv(n int) {
	if t == nil {
		return
	}
	t.msgsRecv.Add(1)
	t.bytesRecv.Add(int64(n))
}

// Traffic returns a snapshot of this rank's cumulative transport traffic.
// Collective operations are included (they are built from point-to-point
// messages), so the counters measure real wire load, not call counts.
func (c *Comm) Traffic() TrafficStats {
	t := c.counters
	if t == nil {
		return TrafficStats{}
	}
	return TrafficStats{
		MessagesSent: t.msgsSent.Load(),
		BytesSent:    t.bytesSent.Load(),
		MessagesRecv: t.msgsRecv.Load(),
		BytesRecv:    t.bytesRecv.Load(),
	}
}

// ResetTraffic zeroes the rank's traffic counters (e.g. between phases of
// a study).
func (c *Comm) ResetTraffic() {
	t := c.counters
	if t == nil {
		return
	}
	t.msgsSent.Store(0)
	t.bytesSent.Store(0)
	t.msgsRecv.Store(0)
	t.bytesRecv.Store(0)
}
