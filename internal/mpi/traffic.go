package mpi

import "sync/atomic"

// TrafficStats is a snapshot of one rank's traffic through its transport,
// accumulated across the world communicator and everything split from it.
// Self-deliveries through the transport are counted; purely local
// pack/unpack shortcuts (the alltoallw self exchange) are not.
type TrafficStats struct {
	MessagesSent int64
	BytesSent    int64
	MessagesRecv int64
	BytesRecv    int64

	// PeerBytesSent[w] / PeerBytesRecv[w] attribute the byte totals to the
	// world rank w on the other end, so collective traffic can be
	// decomposed into the point-to-point flows it is built from:
	// sum(PeerBytesSent) == BytesSent and likewise for the receive side.
	// Nil when the communicator predates per-peer accounting (zero Comm).
	PeerBytesSent []int64
	PeerBytesRecv []int64
}

// traffic holds the live counters shared by a rank's communicators. The
// per-peer rows are world-rank indexed and sized at world creation; all
// updates are atomic so any communicator derived from the rank may count
// concurrently.
type traffic struct {
	msgsSent  atomic.Int64
	bytesSent atomic.Int64
	msgsRecv  atomic.Int64
	bytesRecv atomic.Int64

	peerSent []atomic.Int64
	peerRecv []atomic.Int64
}

// newTraffic returns counters for a world of n ranks.
func newTraffic(n int) *traffic {
	return &traffic{
		peerSent: make([]atomic.Int64, n),
		peerRecv: make([]atomic.Int64, n),
	}
}

// countSend records n bytes sent to world rank peer.
func (t *traffic) countSend(peer, n int) {
	if t == nil {
		return
	}
	t.msgsSent.Add(1)
	t.bytesSent.Add(int64(n))
	if peer >= 0 && peer < len(t.peerSent) {
		t.peerSent[peer].Add(int64(n))
	}
}

// countRecv records n bytes received from world rank peer.
func (t *traffic) countRecv(peer, n int) {
	if t == nil {
		return
	}
	t.msgsRecv.Add(1)
	t.bytesRecv.Add(int64(n))
	if peer >= 0 && peer < len(t.peerRecv) {
		t.peerRecv[peer].Add(int64(n))
	}
}

// Traffic returns a snapshot of this rank's cumulative transport traffic.
// Collective operations are included (they are built from point-to-point
// messages), so the counters measure real wire load, not call counts.
func (c *Comm) Traffic() TrafficStats {
	t := c.counters
	if t == nil {
		return TrafficStats{}
	}
	s := TrafficStats{
		MessagesSent: t.msgsSent.Load(),
		BytesSent:    t.bytesSent.Load(),
		MessagesRecv: t.msgsRecv.Load(),
		BytesRecv:    t.bytesRecv.Load(),
	}
	if len(t.peerSent) > 0 {
		s.PeerBytesSent = make([]int64, len(t.peerSent))
		s.PeerBytesRecv = make([]int64, len(t.peerRecv))
		for i := range t.peerSent {
			s.PeerBytesSent[i] = t.peerSent[i].Load()
			s.PeerBytesRecv[i] = t.peerRecv[i].Load()
		}
	}
	return s
}

// ResetTraffic zeroes the rank's traffic counters (e.g. between phases of
// a study).
func (c *Comm) ResetTraffic() {
	t := c.counters
	if t == nil {
		return
	}
	t.msgsSent.Store(0)
	t.bytesSent.Store(0)
	t.msgsRecv.Store(0)
	t.bytesRecv.Store(0)
	for i := range t.peerSent {
		t.peerSent[i].Store(0)
	}
	for i := range t.peerRecv {
		t.peerRecv[i].Store(0)
	}
}
