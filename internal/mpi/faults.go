package mpi

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"ddr/internal/obs"
)

// PartialExchangeError reports a collective exchange that completed for
// every peer except the listed ones: data from healthy peers landed
// normally, while each lost peer's contribution is missing (and this
// rank's contribution to it may not have been delivered). Cause holds a
// representative underlying error; errors.Is sees through it, so both
// ErrPeerLost and ErrExchangeTimeout remain matchable.
type PartialExchangeError struct {
	LostPeers []int // world ranks, sorted, deduplicated
	Cause     error
}

func (e *PartialExchangeError) Error() string {
	return fmt.Sprintf("mpi: exchange completed partially; lost peers %v: %v", e.LostPeers, e.Cause)
}

func (e *PartialExchangeError) Unwrap() error { return e.Cause }

// newPartialExchangeError normalises the lost-peer set (sort + dedupe).
func newPartialExchangeError(lost []int, cause error) *PartialExchangeError {
	sort.Ints(lost)
	out := lost[:0]
	for i, r := range lost {
		if i == 0 || r != lost[i-1] {
			out = append(out, r)
		}
	}
	return &PartialExchangeError{LostPeers: out, Cause: cause}
}

// IsPeerLoss reports whether err is a peer-loss or deadline condition —
// the class of failures graceful-degradation paths treat as "give up on
// this peer, keep going with the rest".
func IsPeerLoss(err error) bool {
	return errors.Is(err, ErrPeerLost) || errors.Is(err, ErrExchangeTimeout)
}

// Fault describes what the injector wants done with one delivery attempt
// of one message. The zero value means "deliver normally".
type Fault struct {
	// Delay postpones the delivery (and everything queued behind it on
	// the same link, so per-link FIFO order is preserved; cross-link
	// reordering arises naturally).
	Delay time.Duration
	// Drop discards this attempt. The engine retries with bounded
	// exponential backoff, consulting the injector again with an
	// incremented attempt counter; when retries are exhausted the link is
	// declared failed (ErrPeerLost).
	Drop bool
	// Duplicate delivers the message twice. The second copy carries the
	// same sequence number and is discarded by the receiving mailbox's
	// dedupe window.
	Duplicate bool
	// Reorder lets the next queued message on the link overtake this one,
	// provided it belongs to a different (communicator, tag) stream —
	// matched receives within one tag stream stay ordered.
	Reorder bool
	// Sever permanently cuts the link: this message and everything queued
	// or sent after it is discarded, subsequent sends fail with
	// ErrPeerLost, and the destination rank's mailbox is notified so
	// blocked receivers fail instead of hanging.
	Sever bool
}

// FaultInjector decides the fate of each delivery attempt. Implementations
// must be safe for concurrent use (one engine goroutine per link calls
// in). src and dst are world ranks, tag is the message tag (collectives
// use negative tags), seq is the per-link message sequence number (1-based)
// and attempt counts retries of the same message (0 for the first try).
type FaultInjector interface {
	FaultFor(src, dst, tag int, seq uint64, attempt int) Fault
}

// FaultStats is a process-wide snapshot of what the fault engines did.
type FaultStats struct {
	Delays     int64
	Drops      int64
	Retries    int64
	Duplicates int64
	Reorders   int64
	Severed    int64 // links cut by an injected Sever
	Failed     int64 // links cut because delivery retries were exhausted
}

var faultStats struct {
	delays, drops, retries, dups, reorders, severed, failed atomic.Int64
}

// FaultStatsSnapshot returns the cumulative process-wide fault counters.
func FaultStatsSnapshot() FaultStats {
	return FaultStats{
		Delays:     faultStats.delays.Load(),
		Drops:      faultStats.drops.Load(),
		Retries:    faultStats.retries.Load(),
		Duplicates: faultStats.dups.Load(),
		Reorders:   faultStats.reorders.Load(),
		Severed:    faultStats.severed.Load(),
		Failed:     faultStats.failed.Load(),
	}
}

// defaultFaultInjector is consulted by Run/RunTCP when no explicit
// injector is given, letting binaries enable chaos soak via flags without
// plumbing an injector through every call site.
var defaultFaultInjector atomic.Value // of FaultInjector

// SetDefaultFaultInjector installs (or, with nil, clears) the process-wide
// fault injector that Run and RunTCP wrap around every world they build.
func SetDefaultFaultInjector(inj FaultInjector) {
	if inj == nil {
		defaultFaultInjector.Store(injectorBox{})
		return
	}
	defaultFaultInjector.Store(injectorBox{inj})
}

type injectorBox struct{ inj FaultInjector }

func defaultInjector() FaultInjector {
	v, _ := defaultFaultInjector.Load().(injectorBox)
	return v.inj
}

const (
	faultMaxRetries     = 6
	faultRetryBackoff   = 200 * time.Microsecond
	faultReorderWait    = 200 * time.Microsecond
	faultLinkQueueDepth = 1024
)

// faultTransport wraps a raw transport with a per-destination delivery
// worker that applies injected faults. It deliberately does not implement
// zeroCopySender: under chaos every payload is an eager staging-arena
// copy owned by the engine, so retries and duplicates have clean buffer
// ownership.
type faultTransport struct {
	raw transport
	inj FaultInjector
	src int // this rank's world rank

	// onPeerLost, when non-nil, notifies the destination rank's mailbox
	// that this sender is gone (dst, src are world ranks). Only possible
	// when both ends live in this process.
	onPeerLost func(dst, src int, err error)

	mu     sync.Mutex
	links  map[int]*faultLink
	closed bool
	stop   chan struct{}
	wg     sync.WaitGroup

	obsDrops   atomic.Pointer[obs.Counter]
	obsRetries atomic.Pointer[obs.Counter]
	obsSevers  atomic.Pointer[obs.Counter]
	flight     atomic.Pointer[obs.FlightRecorder]
}

// attachObs mirrors the fault counters into a rank's telemetry. Nil
// detaches (the atomic pointers then load nil, whose Add is a no-op).
func (t *faultTransport) attachObs(tel *Telemetry) {
	if tel == nil {
		t.obsDrops.Store(nil)
		t.obsRetries.Store(nil)
		t.obsSevers.Store(nil)
		t.flight.Store(nil)
		return
	}
	t.obsDrops.Store(tel.faultDrops)
	t.obsRetries.Store(tel.faultRetries)
	t.obsSevers.Store(tel.faultSevers)
	t.flight.Store(tel.flight)
}

// recordFlight mirrors one injector verdict into the attached flight
// recorder (free when detached), attributed to this sender.
func (t *faultTransport) recordFlight(kind obs.FlightKind, dst int, e *envelope) {
	f := t.flight.Load()
	if f == nil {
		return
	}
	f.Record(obs.FlightEvent{
		Kind: kind, Rank: int32(t.src), Peer: int32(dst),
		Tag: int32(e.tag), Round: int32(e.tc.Round), Seq: e.seq,
		Exchange: e.tc.Exchange, Bytes: int64(len(e.data)),
	})
}

// faultLink is the outbound queue and worker state for one destination.
type faultLink struct {
	dst  int
	ch   chan envelope
	dead chan struct{} // closed once the link is severed or failed
	seq  atomic.Uint64

	errMu sync.Mutex
	err   error
}

func (l *faultLink) fail(err error) {
	l.errMu.Lock()
	if l.err == nil {
		l.err = err
	}
	l.errMu.Unlock()
	close(l.dead)
}

func (l *faultLink) failure() error {
	l.errMu.Lock()
	defer l.errMu.Unlock()
	return l.err
}

func newFaultTransport(raw transport, inj FaultInjector, src int, onPeerLost func(dst, src int, err error)) *faultTransport {
	return &faultTransport{
		raw:        raw,
		inj:        inj,
		src:        src,
		onPeerLost: onPeerLost,
		links:      make(map[int]*faultLink),
		stop:       make(chan struct{}),
	}
}

func (t *faultTransport) link(dst int) (*faultLink, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return nil, ErrClosed
	}
	l := t.links[dst]
	if l == nil {
		l = &faultLink{dst: dst, ch: make(chan envelope, faultLinkQueueDepth), dead: make(chan struct{})}
		t.links[dst] = l
		t.wg.Add(1)
		go t.worker(l)
	}
	return l, nil
}

func (t *faultTransport) send(dst int, e envelope) error {
	l, err := t.link(dst)
	if err != nil {
		return err
	}
	e.seq = l.seq.Add(1)
	if e.cancel != nil {
		select {
		case l.ch <- e:
			return nil
		case <-l.dead:
			PutBuffer(e.data)
			return l.failure()
		case <-e.cancel:
			PutBuffer(e.data)
			return ErrExchangeTimeout
		}
	}
	select {
	case l.ch <- e:
		return nil
	case <-l.dead:
		PutBuffer(e.data)
		return l.failure()
	}
}

func (t *faultTransport) worker(l *faultLink) {
	defer t.wg.Done()
	for {
		select {
		case e := <-l.ch:
			if !t.process(l, e) {
				t.drainDead(l)
				return
			}
		case <-t.stop:
			// Flush: deliver whatever is still queued without faults, then
			// exit. Mirrors the TCP writer's close-time flush semantics.
			for {
				select {
				case e := <-l.ch:
					t.raw.send(l.dst, e)
				default:
					return
				}
			}
		}
	}
}

// drainDead recycles anything queued behind a severed link.
func (t *faultTransport) drainDead(l *faultLink) {
	for {
		select {
		case e := <-l.ch:
			PutBuffer(e.data)
		default:
			return
		}
	}
}

// process applies the injector's verdicts to one message. It returns
// false when the link died (severed, retries exhausted, or raw transport
// failure).
func (t *faultTransport) process(l *faultLink, e envelope) bool {
	for attempt := 0; ; attempt++ {
		f := t.inj.FaultFor(t.src, l.dst, e.tag, e.seq, attempt)
		if f.Sever {
			faultStats.severed.Add(1)
			t.obsSevers.Load().Add(1)
			t.recordFlight(obs.FlightSever, l.dst, &e)
			t.severLink(l, fmt.Errorf("mpi: link %d->%d severed by fault injection: %w", t.src, l.dst, ErrPeerLost))
			PutBuffer(e.data)
			return false
		}
		if f.Delay > 0 {
			faultStats.delays.Add(1)
			time.Sleep(f.Delay)
		}
		if f.Drop {
			faultStats.drops.Add(1)
			t.obsDrops.Load().Add(1)
			t.recordFlight(obs.FlightDrop, l.dst, &e)
			if attempt >= faultMaxRetries {
				faultStats.failed.Add(1)
				t.recordFlight(obs.FlightSever, l.dst, &e)
				t.severLink(l, fmt.Errorf("mpi: link %d->%d failed after %d delivery attempts: %w", t.src, l.dst, attempt+1, ErrPeerLost))
				PutBuffer(e.data)
				return false
			}
			faultStats.retries.Add(1)
			t.obsRetries.Load().Add(1)
			t.recordFlight(obs.FlightRetry, l.dst, &e)
			time.Sleep(faultRetryBackoff << uint(attempt))
			continue
		}
		if f.Reorder {
			// Let the next queued message overtake this one, but only
			// across (communicator, tag) streams: reordering within one
			// matched stream would violate the ordering Recv relies on.
			select {
			case e2 := <-l.ch:
				if e2.ctx != e.ctx || e2.tag != e.tag {
					faultStats.reorders.Add(1)
					if err := t.raw.send(l.dst, e2); err != nil {
						t.severLink(l, err)
						PutBuffer(e.data)
						return false
					}
				} else {
					// Same stream: keep order, deliver both in sequence.
					if err := t.deliver(l, e, f.Duplicate); err != nil {
						PutBuffer(e2.data)
						return false
					}
					e, f.Duplicate = e2, false
				}
			case <-time.After(faultReorderWait):
			}
		}
		return t.deliver(l, e, f.Duplicate) == nil
	}
}

func (t *faultTransport) deliver(l *faultLink, e envelope, dup bool) error {
	// The duplicate must own its payload, and must copy it BEFORE the
	// first send: transports recycle a message's buffer once delivered
	// (the shm ring synchronously after the ring copy, the TCP writer
	// after the wire write, the mailbox's dedupe window on discard), so
	// after raw.send returns e.data may already be back in the arena —
	// and handed to a concurrent receiver.
	var d envelope
	if dup {
		d = e
		d.data = GetBuffer(len(e.data))
		copy(d.data, e.data)
	}
	if err := t.raw.send(l.dst, e); err != nil {
		t.severLink(l, err)
		if dup {
			PutBuffer(d.data)
		}
		return err
	}
	if dup {
		faultStats.dups.Add(1)
		if err := t.raw.send(l.dst, d); err != nil {
			t.severLink(l, err)
			return err
		}
	}
	return nil
}

func (t *faultTransport) severLink(l *faultLink, err error) {
	l.fail(err)
	// Notify the destination in-band: a lostCtx control envelope sent
	// through the raw transport arrives at the mailbox behind every
	// message delivered before the sever, so spared traffic still in
	// flight (in a shm ring or a leader relay hop — e.g. mapping
	// collectives below the injector's tag floor) stays consumable
	// before the peer reads as lost. A direct markLost here would race
	// ahead of those asynchronous deliveries and fail receives whose
	// messages were already sent.
	msg := err.Error()
	buf := GetBuffer(len(msg))
	copy(buf, msg)
	if serr := t.raw.send(l.dst, envelope{ctx: lostCtx, src: t.src, data: buf}); serr == nil {
		return
	}
	// The raw link itself is down; fall back to the direct mark.
	if t.onPeerLost != nil {
		t.onPeerLost(l.dst, t.src, err)
	}
}

func (t *faultTransport) close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	t.mu.Unlock()
	close(t.stop)
	t.wg.Wait()
	return t.raw.close()
}
