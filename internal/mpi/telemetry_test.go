package mpi

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"testing"

	"ddr/internal/datatype"
	"ddr/internal/obs"
	"ddr/internal/trace"
)

// A 4-rank alltoallw over loopback TCP must leave behind (1) exact wire
// byte counters at both the payload and frame level, (2) the expected
// span population in the recorder, and (3) a Perfetto trace that
// round-trips through a JSON parser with consistent timestamps.
func TestTelemetryTCPAlltoallw(t *testing.T) {
	const (
		n       = 4
		msgSize = 64
	)
	reg := obs.NewRegistry()
	rec := trace.NewRecorder()

	err := RunTCP(n, func(c *Comm) error {
		c.AttachTelemetry(NewTelemetry(reg, rec, c.Rank()))
		sendTypes := make([]datatype.Type, n)
		recvTypes := make([]datatype.Type, n)
		for i := range sendTypes {
			if i == c.Rank() {
				sendTypes[i] = datatype.Empty{}
				recvTypes[i] = datatype.Empty{}
				continue
			}
			sendTypes[i] = datatype.Contiguous{Bytes: msgSize}
			recvTypes[i] = datatype.Contiguous{Bytes: msgSize}
		}
		sendBuf := make([]byte, msgSize)
		recvBuf := make([]byte, msgSize)
		if err := c.Alltoallw(sendBuf, sendTypes, recvBuf, recvTypes); err != nil {
			return err
		}
		return c.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}

	// Payload-level counters: each rank sent and received (n-1)*msgSize
	// alltoallw bytes; the trailing barrier adds empty messages only.
	for r := 0; r < n; r++ {
		sent := reg.Counter("mpi_wire_bytes_sent_total", "", obs.RankLabel(r)).Value()
		recv := reg.Counter("mpi_wire_bytes_recv_total", "", obs.RankLabel(r)).Value()
		want := int64((n - 1) * msgSize)
		if sent != want || recv != want {
			t.Errorf("rank %d payload counters sent=%d recv=%d, want %d", r, sent, recv, want)
		}
		if pending := reg.Gauge("mpi_pending_messages", "", obs.RankLabel(r)).Value(); pending != 0 {
			t.Errorf("rank %d still has %d pending messages", r, pending)
		}
		if lat := reg.Histogram("mpi_alltoallw_latency_seconds", "", nil, obs.RankLabel(r)); lat.Count() != 1 {
			t.Errorf("rank %d alltoallw latency observations = %d, want 1", r, lat.Count())
		}
	}

	// Frame-level TCP counters include the 16-byte header per message.
	// The barrier's empty signals also cross the wire, so totals must be
	// at least the alltoallw share and out must equal in globally.
	var tcpOut, tcpIn int64
	for r := 0; r < n; r++ {
		tcpOut += reg.Counter("mpi_tcp_wire_bytes_out_total", "", obs.RankLabel(r)).Value()
		tcpIn += reg.Counter("mpi_tcp_wire_bytes_in_total", "", obs.RankLabel(r)).Value()
	}
	minA2AW := int64(n * (n - 1) * (msgSize + tcpFrameHeader))
	if tcpOut < minA2AW {
		t.Errorf("tcp frame bytes out = %d, want >= %d", tcpOut, minA2AW)
	}
	if tcpOut != tcpIn {
		t.Errorf("tcp frame bytes out=%d in=%d (should balance: every frame is read in full)", tcpOut, tcpIn)
	}

	// Span population: per rank one alltoallw span, n-1 pack and n-1
	// unpack spans.
	perRank := map[int]map[string]int{}
	for _, e := range rec.Events() {
		if perRank[e.Rank] == nil {
			perRank[e.Rank] = map[string]int{}
		}
		switch {
		case e.Name == "alltoallw":
			perRank[e.Rank]["coll"]++
		case strings.HasPrefix(e.Name, "a2aw-pack->"):
			perRank[e.Rank]["pack"]++
		case strings.HasPrefix(e.Name, "a2aw-unpack<-"):
			perRank[e.Rank]["unpack"]++
		}
	}
	for r := 0; r < n; r++ {
		got := perRank[r]
		if got["coll"] != 1 || got["pack"] != n-1 || got["unpack"] != n-1 {
			t.Errorf("rank %d spans %v, want coll=1 pack=%d unpack=%d", r, got, n-1, n-1)
		}
	}

	// Perfetto JSON round trip.
	var buf bytes.Buffer
	if err := obs.WriteTrace(&buf, rec); err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		TraceEvents []struct {
			Ph  string  `json:"ph"`
			Ts  float64 `json:"ts"`
			Dur float64 `json:"dur"`
			Tid int     `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("trace JSON does not parse: %v", err)
	}
	lastTs := map[int]float64{}
	spans := 0
	for _, e := range parsed.TraceEvents {
		if e.Ph != "X" {
			continue
		}
		spans++
		if e.Ts < 0 || e.Dur < 0 {
			t.Fatalf("negative ts/dur: %+v", e)
		}
		if e.Ts < lastTs[e.Tid] {
			t.Fatalf("rank %d timestamps not monotone in export", e.Tid)
		}
		lastTs[e.Tid] = e.Ts
	}
	if want := n * (1 + 2*(n-1)); spans != want {
		t.Errorf("exported %d spans, want %d", spans, want)
	}
}

// Telemetry attached on the world must follow Split-derived
// communicators, still attributed to the world rank.
func TestTelemetrySharedAcrossSplit(t *testing.T) {
	reg := obs.NewRegistry()
	err := Run(4, func(c *Comm) error {
		c.AttachTelemetry(NewTelemetry(reg, nil, c.Rank()))
		sub, err := c.Split(c.Rank()%2, c.Rank())
		if err != nil {
			return err
		}
		if sub.Telemetry() != c.Telemetry() {
			return fmt.Errorf("telemetry not propagated through Split")
		}
		// Split's own Allgather is counted too, so measure the delta of
		// this rank's counter across the sub-communicator send.
		own := reg.Counter("mpi_wire_bytes_sent_total", "", obs.RankLabel(c.Rank()))
		base := own.Value()
		if sub.Rank() == 0 {
			if err := sub.Send(1, 5, make([]byte, 10)); err != nil {
				return err
			}
			if got := own.Value() - base; got != 10 {
				return fmt.Errorf("rank %d counted %d bytes for a 10-byte sub-comm send", c.Rank(), got)
			}
			return nil
		}
		_, _, _, err = sub.Recv(0, 5)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
}

// Attaching no telemetry must keep the hot paths on the nil fast path.
func TestTelemetryNilAttach(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		c.AttachTelemetry(nil)
		if c.Rank() == 0 {
			return c.Send(1, 1, []byte("x"))
		}
		_, _, _, err := c.Recv(0, 1)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if tel := NewTelemetry(nil, nil, 0); tel != nil {
		t.Error("NewTelemetry(nil, nil) should be nil")
	}
}
