package mpi_test

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"os/exec"
	"strings"
	"testing"
	"time"

	"ddr/internal/mpi"
)

// killPeerDeadline bounds how long a survivor may take to observe the
// death of a killed peer.
const killPeerDeadline = 10 * time.Second

// killPeerStepTimeout bounds every other blocking step of the
// multi-process choreography (worker startup, address exchange, joins).
// On a loaded 1-core box a race-built subprocess can starve long enough
// to wedge the whole dance; a bounded step turns that into a retryable
// failure instead of eating the package's test timeout.
const killPeerStepTimeout = 60 * time.Second

// TestTCPKillPeerMidExchange kills a real worker process mid-exchange and
// verifies the surviving ranks observe mpi.ErrPeerLost within the
// deadline instead of hanging. Rank 0 runs in this process; ranks 1
// (survivor) and 2 (victim) are subprocesses over loopback TCP.
//
// Subprocess scheduling under CPU starvation can wedge an attempt
// before the kill is ever issued; such attempts prove nothing about the
// loss path and are retried once. A real peer-loss regression fails
// both attempts.
func TestTCPKillPeerMidExchange(t *testing.T) {
	if os.Getenv("DDR_KILL_WORKER") != "" {
		return // worker mode is driven by TestTCPKillWorker below
	}
	if testing.Short() {
		t.Skip("multi-process test skipped in -short mode")
	}
	var lastErr error
	for attempt := 1; attempt <= 2; attempt++ {
		if lastErr = runKillPeerAttempt(t); lastErr == nil {
			return
		}
		t.Logf("attempt %d: %v", attempt, lastErr)
	}
	t.Fatal(lastErr)
}

// killWorker is one subprocess plus a goroutine pumping its stdout
// lines into a channel, so waiting for a protocol line can time out.
type killWorker struct {
	cmd   *exec.Cmd
	stdin io.WriteCloser
	lines chan string
}

// expect waits for the next stdout line starting with prefix and
// returns the remainder, failing after killPeerStepTimeout.
func (w *killWorker) expect(prefix string) (string, error) {
	deadline := time.After(killPeerStepTimeout)
	for {
		select {
		case line, ok := <-w.lines:
			if !ok {
				return "", fmt.Errorf("worker exited while waiting for %q", prefix)
			}
			if strings.HasPrefix(line, prefix) {
				return strings.TrimSpace(strings.TrimPrefix(line, prefix)), nil
			}
		case <-deadline:
			return "", fmt.Errorf("timed out waiting for %q", prefix)
		}
	}
}

func runKillPeerAttempt(t *testing.T) error {
	const n = 3
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}

	ep, err := mpi.NewTCPEndpoint("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ep.Close()
	addrs := make([]string, n)
	addrs[0] = ep.Addr()

	workers := make([]*killWorker, 0, n-1)
	defer func() {
		for _, w := range workers {
			w.cmd.Process.Kill() //nolint:errcheck // cleanup on failure paths
			w.cmd.Wait()         //nolint:errcheck // reap, avoid zombies across retries
		}
	}()
	for rank := 1; rank < n; rank++ {
		cmd := exec.Command(exe, "-test.run", "TestTCPKillWorker$", "-test.v")
		cmd.Env = append(os.Environ(),
			fmt.Sprintf("DDR_KILL_WORKER=%d", rank),
			fmt.Sprintf("DDR_KILL_SIZE=%d", n))
		stdin, err := cmd.StdinPipe()
		if err != nil {
			t.Fatal(err)
		}
		stdout, err := cmd.StdoutPipe()
		if err != nil {
			t.Fatal(err)
		}
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		w := &killWorker{cmd: cmd, stdin: stdin, lines: make(chan string, 64)}
		go func() {
			sc := bufio.NewScanner(stdout)
			for sc.Scan() {
				w.lines <- sc.Text()
			}
			close(w.lines)
		}()
		workers = append(workers, w)
	}

	for i, w := range workers {
		addr, err := w.expect("ADDR ")
		if err != nil {
			return fmt.Errorf("worker %d: %w", i+1, err)
		}
		addrs[i+1] = addr
	}
	for _, w := range workers {
		if _, err := fmt.Fprintln(w.stdin, strings.Join(addrs, " ")); err != nil {
			return fmt.Errorf("sending address list: %w", err)
		}
	}

	// Join and warmup block on every peer being up; run them under the
	// step watchdog so a starved worker can't wedge the attempt.
	joined := make(chan error, 1)
	var c *mpi.Comm
	go func() {
		var err error
		c, err = ep.Join(0, addrs)
		if err == nil {
			err = killExchangeWarmup(c)
		}
		joined <- err
	}()
	select {
	case err := <-joined:
		if err != nil {
			return fmt.Errorf("rank 0 join/warmup: %w", err)
		}
	case <-time.After(killPeerStepTimeout):
		return errors.New("timed out joining the 3-rank world")
	}

	// The victim reports it is parked mid-exchange; kill it for real.
	if _, err := workers[1].expect("VICTIM-READY"); err != nil {
		return err
	}
	if err := workers[1].cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	workers[1].cmd.Wait() //nolint:errcheck // killed on purpose

	// Rank 0 is itself a survivor: its pending receive from the victim
	// must fail with the typed loss error, within the deadline. From
	// here on the attempt proves the contract — no more retrying, any
	// failure is the real thing.
	start := time.Now()
	if err := killSurvivorCheck(c); err != nil {
		t.Fatalf("rank 0 survivor check: %v", err)
	}
	if el := time.Since(start); el > killPeerDeadline {
		t.Fatalf("rank 0 observed the loss only after %v", el)
	}

	// The subprocess survivor must reach the same verdict.
	got, err := workers[0].expect("SURVIVOR ")
	if err != nil {
		t.Fatal(err)
	}
	if got != "ok" {
		t.Fatalf("worker survivor reported %q", got)
	}
	if err := workers[0].cmd.Wait(); err != nil {
		t.Fatalf("survivor worker failed: %v", err)
	}
	return nil
}

// TestTCPKillWorker is the worker-process entry point for the kill test;
// a no-op unless launched by TestTCPKillPeerMidExchange.
func TestTCPKillWorker(t *testing.T) {
	rankStr := os.Getenv("DDR_KILL_WORKER")
	if rankStr == "" {
		t.Skip("not in worker mode")
	}
	var rank, size int
	if _, err := fmt.Sscan(rankStr, &rank); err != nil {
		t.Fatal(err)
	}
	if _, err := fmt.Sscan(os.Getenv("DDR_KILL_SIZE"), &size); err != nil {
		t.Fatal(err)
	}
	ep, err := mpi.NewTCPEndpoint("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ep.Close()
	fmt.Printf("ADDR %s\n", ep.Addr())
	os.Stdout.Sync() //nolint:errcheck

	line, err := bufio.NewReader(os.Stdin).ReadString('\n')
	if err != nil {
		t.Fatalf("reading address list: %v", err)
	}
	c, err := ep.Join(rank, strings.Fields(line))
	if err != nil {
		t.Fatal(err)
	}
	if err := killExchangeWarmup(c); err != nil {
		t.Fatalf("rank %d warmup: %v", rank, err)
	}
	if rank == size-1 {
		// Victim: park in a receive that never completes and wait for the
		// parent's SIGKILL. Exiting normally would close the endpoint
		// gracefully and dodge the abrupt-death path under test.
		fmt.Println("VICTIM-READY")
		os.Stdout.Sync() //nolint:errcheck
		c.Recv(0, 99)    //nolint:errcheck // killed while blocked here
		t.Fatal("victim outlived its execution")
	}
	if err := killSurvivorCheck(c); err != nil {
		fmt.Printf("SURVIVOR %v\n", err)
		t.Fatalf("rank %d: %v", rank, err)
	}
	fmt.Println("SURVIVOR ok")
}

// killExchangeWarmup exchanges one message along every directed pair so
// every TCP connection in the world is established and proven healthy
// before the victim goes down.
func killExchangeWarmup(c *mpi.Comm) error {
	for peer := 0; peer < c.Size(); peer++ {
		if peer == c.Rank() {
			continue
		}
		if err := c.Send(peer, 1, []byte{byte(c.Rank())}); err != nil {
			return err
		}
	}
	for peer := 0; peer < c.Size(); peer++ {
		if peer == c.Rank() {
			continue
		}
		data, _, _, err := c.Recv(peer, 1)
		if err != nil {
			return err
		}
		if len(data) != 1 || int(data[0]) != peer {
			return fmt.Errorf("warmup from %d delivered %v", peer, data)
		}
		mpi.PutBuffer(data)
	}
	return nil
}

// killSurvivorCheck blocks receiving from the victim (the highest rank)
// and requires the typed peer-loss error within the deadline.
func killSurvivorCheck(c *mpi.Comm) error {
	ctx, cancel := context.WithTimeout(context.Background(), killPeerDeadline)
	defer cancel()
	victim := c.Size() - 1
	_, _, _, err := c.RecvCtx(ctx, victim, 2)
	if !errors.Is(err, mpi.ErrPeerLost) {
		return fmt.Errorf("recv from killed rank %d: got %v, want mpi.ErrPeerLost", victim, err)
	}
	return nil
}
