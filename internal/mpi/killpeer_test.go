package mpi_test

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"os/exec"
	"strings"
	"testing"
	"time"

	"ddr/internal/mpi"
)

// killPeerDeadline bounds how long a survivor may take to observe the
// death of a killed peer.
const killPeerDeadline = 10 * time.Second

// TestTCPKillPeerMidExchange kills a real worker process mid-exchange and
// verifies the surviving ranks observe mpi.ErrPeerLost within the
// deadline instead of hanging. Rank 0 runs in this process; ranks 1
// (survivor) and 2 (victim) are subprocesses over loopback TCP.
func TestTCPKillPeerMidExchange(t *testing.T) {
	if os.Getenv("DDR_KILL_WORKER") != "" {
		return // worker mode is driven by TestTCPKillWorker below
	}
	if testing.Short() {
		t.Skip("multi-process test skipped in -short mode")
	}
	const n = 3
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}

	ep, err := mpi.NewTCPEndpoint("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ep.Close()
	addrs := make([]string, n)
	addrs[0] = ep.Addr()

	type worker struct {
		cmd   *exec.Cmd
		stdin io.WriteCloser
		out   *bufio.Reader
	}
	workers := make([]worker, 0, n-1)
	for rank := 1; rank < n; rank++ {
		cmd := exec.Command(exe, "-test.run", "TestTCPKillWorker$", "-test.v")
		cmd.Env = append(os.Environ(),
			fmt.Sprintf("DDR_KILL_WORKER=%d", rank),
			fmt.Sprintf("DDR_KILL_SIZE=%d", n))
		stdin, err := cmd.StdinPipe()
		if err != nil {
			t.Fatal(err)
		}
		stdout, err := cmd.StdoutPipe()
		if err != nil {
			t.Fatal(err)
		}
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		workers = append(workers, worker{cmd: cmd, stdin: stdin, out: bufio.NewReader(stdout)})
	}
	defer func() {
		for _, w := range workers {
			w.cmd.Process.Kill() //nolint:errcheck // cleanup on failure paths
		}
	}()

	readLine := func(i int, prefix string) string {
		t.Helper()
		for {
			line, err := workers[i].out.ReadString('\n')
			if err != nil {
				t.Fatalf("worker %d: waiting for %q: %v", i+1, prefix, err)
			}
			if strings.HasPrefix(line, prefix) {
				return strings.TrimSpace(strings.TrimPrefix(line, prefix))
			}
		}
	}
	for i := range workers {
		addrs[i+1] = readLine(i, "ADDR ")
	}
	for _, w := range workers {
		if _, err := fmt.Fprintln(w.stdin, strings.Join(addrs, " ")); err != nil {
			t.Fatal(err)
		}
	}

	c, err := ep.Join(0, addrs)
	if err != nil {
		t.Fatal(err)
	}
	if err := killExchangeWarmup(c); err != nil {
		t.Fatalf("rank 0 warmup: %v", err)
	}

	// The victim reports it is parked mid-exchange; kill it for real.
	readLine(1, "VICTIM-READY")
	if err := workers[1].cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	workers[1].cmd.Wait() //nolint:errcheck // killed on purpose

	// Rank 0 is itself a survivor: its pending receive from the victim
	// must fail with the typed loss error, within the deadline.
	start := time.Now()
	if err := killSurvivorCheck(c); err != nil {
		t.Fatalf("rank 0 survivor check: %v", err)
	}
	if el := time.Since(start); el > killPeerDeadline {
		t.Fatalf("rank 0 observed the loss only after %v", el)
	}

	// The subprocess survivor must reach the same verdict.
	if got := readLine(0, "SURVIVOR "); got != "ok" {
		t.Fatalf("worker survivor reported %q", got)
	}
	if err := workers[0].cmd.Wait(); err != nil {
		t.Fatalf("survivor worker failed: %v", err)
	}
}

// TestTCPKillWorker is the worker-process entry point for the kill test;
// a no-op unless launched by TestTCPKillPeerMidExchange.
func TestTCPKillWorker(t *testing.T) {
	rankStr := os.Getenv("DDR_KILL_WORKER")
	if rankStr == "" {
		t.Skip("not in worker mode")
	}
	var rank, size int
	if _, err := fmt.Sscan(rankStr, &rank); err != nil {
		t.Fatal(err)
	}
	if _, err := fmt.Sscan(os.Getenv("DDR_KILL_SIZE"), &size); err != nil {
		t.Fatal(err)
	}
	ep, err := mpi.NewTCPEndpoint("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ep.Close()
	fmt.Printf("ADDR %s\n", ep.Addr())
	os.Stdout.Sync() //nolint:errcheck

	line, err := bufio.NewReader(os.Stdin).ReadString('\n')
	if err != nil {
		t.Fatalf("reading address list: %v", err)
	}
	c, err := ep.Join(rank, strings.Fields(line))
	if err != nil {
		t.Fatal(err)
	}
	if err := killExchangeWarmup(c); err != nil {
		t.Fatalf("rank %d warmup: %v", rank, err)
	}
	if rank == size-1 {
		// Victim: park in a receive that never completes and wait for the
		// parent's SIGKILL. Exiting normally would close the endpoint
		// gracefully and dodge the abrupt-death path under test.
		fmt.Println("VICTIM-READY")
		os.Stdout.Sync() //nolint:errcheck
		c.Recv(0, 99)    //nolint:errcheck // killed while blocked here
		t.Fatal("victim outlived its execution")
	}
	if err := killSurvivorCheck(c); err != nil {
		fmt.Printf("SURVIVOR %v\n", err)
		t.Fatalf("rank %d: %v", rank, err)
	}
	fmt.Println("SURVIVOR ok")
}

// killExchangeWarmup exchanges one message along every directed pair so
// every TCP connection in the world is established and proven healthy
// before the victim goes down.
func killExchangeWarmup(c *mpi.Comm) error {
	for peer := 0; peer < c.Size(); peer++ {
		if peer == c.Rank() {
			continue
		}
		if err := c.Send(peer, 1, []byte{byte(c.Rank())}); err != nil {
			return err
		}
	}
	for peer := 0; peer < c.Size(); peer++ {
		if peer == c.Rank() {
			continue
		}
		data, _, _, err := c.Recv(peer, 1)
		if err != nil {
			return err
		}
		if len(data) != 1 || int(data[0]) != peer {
			return fmt.Errorf("warmup from %d delivered %v", peer, data)
		}
		mpi.PutBuffer(data)
	}
	return nil
}

// killSurvivorCheck blocks receiving from the victim (the highest rank)
// and requires the typed peer-loss error within the deadline.
func killSurvivorCheck(c *mpi.Comm) error {
	ctx, cancel := context.WithTimeout(context.Background(), killPeerDeadline)
	defer cancel()
	victim := c.Size() - 1
	_, _, _, err := c.RecvCtx(ctx, victim, 2)
	if !errors.Is(err, mpi.ErrPeerLost) {
		return fmt.Errorf("recv from killed rank %d: got %v, want mpi.ErrPeerLost", victim, err)
	}
	return nil
}
