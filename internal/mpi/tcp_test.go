package mpi

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"runtime/debug"
	"strings"
	"sync"
	"testing"

	"ddr/internal/obs"
)

// TestTCPSmallFrameStorm floods every peer pair with small tagged
// messages so the per-peer writers must coalesce: with 4 ranks each
// sending 64 frames to 3 peers through default queues, vectored batches
// are statistically guaranteed. Contents and per-tag identity are checked
// end to end.
func TestTCPSmallFrameStorm(t *testing.T) {
	const (
		n       = 4
		perPeer = 64
		size    = 96
	)
	err := RunTCP(n, func(c *Comm) error {
		rank := c.Rank()
		for peer := 0; peer < n; peer++ {
			if peer == rank {
				continue
			}
			for m := 0; m < perPeer; m++ {
				msg := make([]byte, size)
				for i := range msg {
					msg[i] = byte(rank ^ m ^ i)
				}
				if err := c.Send(peer, m, msg); err != nil {
					return err
				}
			}
		}
		for peer := 0; peer < n; peer++ {
			if peer == rank {
				continue
			}
			for m := 0; m < perPeer; m++ {
				data, from, tag, err := c.Recv(peer, m)
				if err != nil {
					return err
				}
				if from != peer || tag != m || len(data) != size {
					return fmt.Errorf("got %d bytes from %d tag %d, want %d from %d tag %d",
						len(data), from, tag, size, peer, m)
				}
				for i, b := range data {
					if b != byte(peer^m^i) {
						return fmt.Errorf("byte %d from rank %d tag %d corrupted", i, peer, m)
					}
				}
				PutBuffer(data)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestTCPChunkedPayload pushes payloads across the chunk threshold (with
// a small threshold so the test stays fast) and checks byte-exact
// reassembly plus the chunk counters on both sides.
func TestTCPChunkedPayload(t *testing.T) {
	opts := TCPOptions{ChunkThreshold: 64 << 10, ChunkSize: 16 << 10}
	sizes := []int{64<<10 + 1, 200 << 10, 1 << 20}
	err := RunTCPOpts(2, opts, func(c *Comm) error {
		if c.Rank() == 0 {
			for i, size := range sizes {
				msg := make([]byte, size)
				for j := range msg {
					msg[j] = byte(j*7 + i)
				}
				if err := c.Send(1, i, msg); err != nil {
					return err
				}
			}
			_, _, _, err := c.Recv(1, 99)
			return err
		}
		for i, size := range sizes {
			data, _, _, err := c.Recv(0, i)
			if err != nil {
				return err
			}
			if len(data) != size {
				return fmt.Errorf("message %d: got %d bytes, want %d", i, len(data), size)
			}
			for j, b := range data {
				if b != byte(j*7+i) {
					return fmt.Errorf("message %d corrupted at byte %d", i, j)
				}
			}
			PutBuffer(data)
		}
		return c.Send(0, 99, []byte{1})
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestTCPChunkOrdering verifies MPI non-overtaking across the chunk
// boundary: a large (chunked) message followed by a small one on the SAME
// tag must be received in send order, even though the small frame
// physically arrives while the big one is still streaming.
func TestTCPChunkOrdering(t *testing.T) {
	opts := TCPOptions{ChunkThreshold: 32 << 10, ChunkSize: 4 << 10}
	big := 512 << 10
	err := RunTCPOpts(2, opts, func(c *Comm) error {
		const tag = 5
		if c.Rank() == 0 {
			msg := make([]byte, big)
			for i := range msg {
				msg[i] = byte(i)
			}
			if err := c.Send(1, tag, msg); err != nil {
				return err
			}
			// Same tag, tiny: its single frame interleaves with the big
			// message's chunk stream on the wire.
			return c.Send(1, tag, []byte("after"))
		}
		first, _, _, err := c.Recv(0, tag)
		if err != nil {
			return err
		}
		if len(first) != big {
			return fmt.Errorf("small message overtook chunked one: first Recv got %d bytes", len(first))
		}
		for i, b := range first {
			if b != byte(i) {
				return fmt.Errorf("chunked payload corrupted at byte %d", i)
			}
		}
		PutBuffer(first)
		second, _, _, err := c.Recv(0, tag)
		if err != nil {
			return err
		}
		if string(second) != "after" {
			return fmt.Errorf("second Recv got %q", second)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestTCPInterleavedChunkStreams has every rank stream a large payload to
// every other rank while peppering the same connections with small
// control messages — multiple chunk streams reassembling concurrently per
// read loop, interleaved with whole frames.
func TestTCPInterleavedChunkStreams(t *testing.T) {
	const (
		n     = 4
		big   = 256 << 10
		small = 32
	)
	opts := TCPOptions{ChunkThreshold: 16 << 10, ChunkSize: 8 << 10}
	err := RunTCPOpts(n, opts, func(c *Comm) error {
		rank := c.Rank()
		var wg sync.WaitGroup
		sendErr := make([]error, n)
		for peer := 0; peer < n; peer++ {
			if peer == rank {
				continue
			}
			wg.Add(1)
			go func(peer int) {
				defer wg.Done()
				msg := make([]byte, big)
				for i := range msg {
					msg[i] = byte(i * (rank + 1))
				}
				if err := c.Send(peer, 0, msg); err != nil {
					sendErr[peer] = err
					return
				}
				for k := 0; k < 8; k++ {
					if err := c.Send(peer, 1, bytes.Repeat([]byte{byte(k)}, small)); err != nil {
						sendErr[peer] = err
						return
					}
				}
			}(peer)
		}
		for peer := 0; peer < n; peer++ {
			if peer == rank {
				continue
			}
			data, _, _, err := c.Recv(peer, 0)
			if err != nil {
				return err
			}
			if len(data) != big {
				return fmt.Errorf("from %d: got %d bytes, want %d", peer, len(data), big)
			}
			for i, b := range data {
				if b != byte(i*(peer+1)) {
					return fmt.Errorf("stream from %d corrupted at %d", peer, i)
				}
			}
			PutBuffer(data)
			for k := 0; k < 8; k++ {
				got, _, _, err := c.Recv(peer, 1)
				if err != nil {
					return err
				}
				if len(got) != small || got[0] != byte(k) {
					return fmt.Errorf("control %d from %d corrupted", k, peer)
				}
				PutBuffer(got)
			}
		}
		wg.Wait()
		for _, err := range sendErr {
			if err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestTCPCloseMidStream closes an endpoint while a chunked send is still
// streaming. The contract is orderly shutdown: Close flushes what it can,
// force-closes the rest within its timeout, and nothing hangs or panics.
func TestTCPCloseMidStream(t *testing.T) {
	opts := TCPOptions{ChunkThreshold: 4 << 10, ChunkSize: 1 << 10}
	a, err := NewTCPEndpoint("127.0.0.1:0", opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewTCPEndpoint("127.0.0.1:0", opts)
	if err != nil {
		t.Fatal(err)
	}
	addrs := []string{a.Addr(), b.Addr()}
	ca, err := a.Join(0, addrs)
	if err != nil {
		t.Fatal(err)
	}
	cb, err := b.Join(1, addrs)
	if err != nil {
		t.Fatal(err)
	}
	// Start a receiver that will be cut off mid-stream.
	recvDone := make(chan error, 1)
	go func() {
		for {
			data, _, _, err := cb.Recv(0, AnySource)
			if err != nil {
				recvDone <- nil // closed mailbox is the expected exit
				return
			}
			PutBuffer(data)
		}
	}()
	for i := 0; i < 16; i++ {
		if err := ca.Send(1, 3, make([]byte, 64<<10)); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	if err := a.Close(); err != nil {
		t.Fatalf("close a: %v", err)
	}
	// Sends after Close fail cleanly rather than wedging.
	if err := ca.Send(1, 3, []byte("x")); err == nil {
		t.Fatal("send after Close succeeded")
	}
	if err := b.Close(); err != nil {
		t.Fatalf("close b: %v", err)
	}
	<-recvDone
}

// TestTCPInboundConnTracking exercises the Close path for accepted
// connections: an endpoint that only ever received (never dialed) must
// still tear down its read-loop connections on Close.
func TestTCPInboundConnTracking(t *testing.T) {
	a, err := NewTCPEndpoint("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewTCPEndpoint("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addrs := []string{a.Addr(), b.Addr()}
	ca, _ := a.Join(0, addrs)
	cb, _ := b.Join(1, addrs)
	if err := ca.Send(1, 0, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	if data, _, _, err := cb.Recv(0, 0); err != nil || string(data) != "hello" {
		t.Fatalf("recv: %q %v", data, err)
	}
	// b has one inbound connection (from a) and zero dialed peers.
	b.mu.Lock()
	inbound, peers := len(b.inbound), len(b.peers)
	b.mu.Unlock()
	if inbound != 1 || peers != 0 {
		t.Fatalf("endpoint b tracks %d inbound / %d peers, want 1 / 0", inbound, peers)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	b.mu.Lock()
	inbound = len(b.inbound)
	b.mu.Unlock()
	if inbound != 0 {
		t.Fatalf("%d inbound connections still tracked after Close", inbound)
	}
	a.Close()
}

// TestTCPBackpressureWarning drives a peer's send queue to saturation and
// checks that the event is counted and warned about exactly once.
func TestTCPBackpressureWarning(t *testing.T) {
	var logbuf bytes.Buffer
	prev := obs.SetWarnOutput(&logbuf)
	defer obs.SetWarnOutput(prev)

	opts := TCPOptions{SendQueueLen: 2, WriteBatch: 2}
	var stats TCPStats
	err := RunTCPOpts(2, opts, func(c *Comm) error {
		if c.Rank() == 0 {
			for i := 0; i < 512; i++ {
				if err := c.Send(1, 0, make([]byte, 4096)); err != nil {
					return err
				}
			}
			if tt, ok := c.tr.(*tcpTransport); ok {
				stats = tt.ep.Stats()
			}
			return nil
		}
		for i := 0; i < 512; i++ {
			data, _, _, err := c.Recv(0, 0)
			if err != nil {
				return err
			}
			PutBuffer(data)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.BackpressureEvents == 0 {
		t.Fatal("512 sends through a 2-deep queue never hit backpressure")
	}
	out := logbuf.String()
	if !strings.Contains(out, "saturated") {
		t.Fatalf("no saturation warning emitted; log: %q", out)
	}
	if strings.Count(out, "saturated") != 1 {
		t.Fatalf("saturation warned more than once per peer:\n%s", out)
	}
}

// TestTCPFrameTooLarge checks the single-frame wire-format guard that
// remains when chunked streaming is disabled: a payload whose length
// cannot be expressed in the header's u32 field is rejected with a typed
// error instead of being silently truncated on the wire.
func TestTCPFrameTooLarge(t *testing.T) {
	noChunk := TCPOptions{ChunkThreshold: -1}.resolve()
	chunked := TCPOptions{}.resolve()
	over := int(maxSingleFrame) + 1
	if err := checkFrameSize(over, &noChunk); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("got %v, want ErrFrameTooLarge", err)
	}
	if err := checkFrameSize(over, &chunked); err != nil {
		t.Fatalf("chunked path rejected a large message: %v", err)
	}
	if err := checkFrameSize(4096, &noChunk); err != nil {
		t.Fatalf("small frame rejected: %v", err)
	}
}

// TestTCPStatsCoalescing asserts the writer actually vectors multiple
// frames per write under bursty load.
func TestTCPStatsCoalescing(t *testing.T) {
	var stats TCPStats
	err := RunTCP(2, func(c *Comm) error {
		if c.Rank() == 0 {
			for i := 0; i < 256; i++ {
				if err := c.Send(1, i, []byte("burst")); err != nil {
					return err
				}
			}
			// Wait for the receiver's ack so every queued frame has been
			// written before the counters are read.
			if _, _, _, err := c.Recv(1, 0); err != nil {
				return err
			}
			if tt, ok := c.tr.(*tcpTransport); ok {
				stats = tt.ep.Stats()
			}
			return nil
		}
		for i := 0; i < 256; i++ {
			if _, _, _, err := c.Recv(0, i); err != nil {
				return err
			}
		}
		return c.Send(0, 0, []byte{1})
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.FramesOut != 256 {
		t.Fatalf("FramesOut = %d, want 256", stats.FramesOut)
	}
	if stats.Batches >= stats.FramesOut {
		t.Fatalf("no coalescing: %d batches for %d frames", stats.Batches, stats.FramesOut)
	}
	if stats.FramesCoalesced == 0 {
		t.Fatal("FramesCoalesced = 0 under a 256-frame burst")
	}
	if stats.SendQueueDepth != 0 {
		t.Fatalf("SendQueueDepth = %d after drain, want 0", stats.SendQueueDepth)
	}
}

// recycleSink implements chunkSink for decoder-level tests, recycling
// payloads immediately so the arena round-trips.
type recycleSink struct {
	msgs      int
	completed int
	last      envelope
}

func (s *recycleSink) put(e envelope) {
	s.msgs++
	s.last = e
	if e.pend == nil {
		PutBuffer(e.data)
	}
}

func (s *recycleSink) complete(p *chunkPending) {
	s.completed++
	PutBuffer(s.last.data)
}

func (s *recycleSink) removePending(p *chunkPending) {
	PutBuffer(s.last.data)
}

// buildMsgFrame assembles a frameMsg wire image for decoder tests.
func buildMsgFrame(ctx uint32, src int, tag int, payload []byte) []byte {
	f := make([]byte, tcpFrameHeader+len(payload))
	f[0] = frameMsg
	binary.LittleEndian.PutUint32(f[4:], ctx)
	binary.LittleEndian.PutUint32(f[8:], uint32(src))
	binary.LittleEndian.PutUint32(f[12:], uint32(int32(tag)))
	binary.LittleEndian.PutUint32(f[16:], uint32(len(payload)))
	copy(f[tcpFrameHeader:], payload)
	return f
}

// buildChunkFrame assembles a frameChunk wire image for decoder tests.
func buildChunkFrame(ctx uint32, src, tag int, stream uint32, total uint64, payload []byte) []byte {
	f := make([]byte, tcpFrameHeader+tcpChunkExt+len(payload))
	f[0] = frameChunk
	binary.LittleEndian.PutUint32(f[4:], ctx)
	binary.LittleEndian.PutUint32(f[8:], uint32(src))
	binary.LittleEndian.PutUint32(f[12:], uint32(int32(tag)))
	binary.LittleEndian.PutUint32(f[16:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(f[tcpFrameHeader:], stream)
	binary.LittleEndian.PutUint64(f[tcpFrameHeader+8:], total)
	copy(f[tcpFrameHeader+tcpChunkExt:], payload)
	return f
}

// TestTCPReceiveSteadyStateAlloc is the transport twin of core's
// TestZeroAllocSteadyState: once the arena is warm, decoding a whole
// frame draws its payload buffer from the pool and performs zero heap
// allocations per frame.
func TestTCPReceiveSteadyStateAlloc(t *testing.T) {
	const size = 8192
	frame := buildMsgFrame(0, 1, 7, make([]byte, size))
	sink := &recycleSink{}
	dec := newFrameDecoder(sink, maxSingleFrame, maxChunkTotal, maxInboundChunks)
	r := bytes.NewReader(nil)
	// Warm the arena class.
	for i := 0; i < 3; i++ {
		r.Reset(frame)
		if _, _, err := dec.readFrame(r); err != nil {
			t.Fatal(err)
		}
	}
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	allocs := testing.AllocsPerRun(100, func() {
		r.Reset(frame)
		if _, _, err := dec.readFrame(r); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state frame decode allocates %.1f objects/frame, want 0", allocs)
	}
}

// TestTCPDecoderProtocolErrors feeds the decoder malformed frames and
// checks each is rejected with errTCPProto rather than a hang or panic.
func TestTCPDecoderProtocolErrors(t *testing.T) {
	cases := []struct {
		name  string
		frame []byte
	}{
		{"unknown type", func() []byte {
			f := buildMsgFrame(0, 0, 0, nil)
			f[0] = 99
			return f
		}()},
		{"zero total chunk", buildChunkFrame(0, 0, 0, 1, 0, nil)},
		{"oversize total chunk", buildChunkFrame(0, 0, 0, 1, 1<<40, nil)},
		{"chunk overflow", func() []byte {
			a := buildChunkFrame(0, 0, 0, 1, 8, make([]byte, 6))
			b := buildChunkFrame(0, 0, 0, 1, 8, make([]byte, 6))
			return append(a, b...)
		}()},
		{"stream identity change", func() []byte {
			a := buildChunkFrame(0, 0, 0, 1, 64, make([]byte, 6))
			b := buildChunkFrame(0, 0, 9, 1, 64, make([]byte, 6))
			return append(a, b...)
		}()},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dec := newFrameDecoder(&recycleSink{}, maxSingleFrame, maxChunkTotal, 4)
			r := bytes.NewReader(tc.frame)
			var err error
			for err == nil && r.Len() > 0 {
				_, _, err = dec.readFrame(r)
			}
			if err == nil || !strings.Contains(err.Error(), "protocol error") {
				t.Fatalf("got %v, want wrapped errTCPProto", err)
			}
		})
	}
}
