package mpi

import "fmt"

// Launch is the single entry point for running an n-rank world: it
// replaces the Run / RunChaos / RunTCP / RunTCPOpts / RunTCPChaos family
// with one call configured by functional options. The default is the
// in-process transport with the process-wide fault injector (see
// SetDefaultFaultInjector), i.e. exactly the old Run.
//
//	mpi.Launch(8, body)                                          // Run
//	mpi.Launch(8, body, mpi.WithFaultInjector(inj))              // RunChaos
//	mpi.Launch(8, body, mpi.WithTransport(mpi.TransportTCP))     // RunTCP
//	mpi.Launch(8, body, mpi.WithTCPOptions(opts))                // RunTCPOpts
//	mpi.Launch(8, body, mpi.WithTransport(mpi.TransportShm))     // shm rings
//	mpi.Launch(8, body, mpi.WithTransport(mpi.TransportShm),
//	    mpi.WithTopology(func(rank int) int { return rank / 4 })) // two-level
//
// body runs once per rank (one goroutine each); Launch blocks until all
// ranks return and yields the joined errors. When a rank fails, the
// remaining ranks' pending operations are unblocked with ErrClosed so
// the world can drain.
//
// Option values are validated up front: malformed TCPOptions or
// ShmOptions (negative sizes, non-power-of-2 rings, ...) fail here with
// an error wrapping ErrBadOption instead of misbehaving deep inside a
// transport goroutine.
func Launch(n int, body func(c *Comm) error, opts ...LaunchOption) error {
	cfg := launchConfig{tcpOpts: DefaultTCPOptions()}
	for _, o := range opts {
		o(&cfg)
	}
	if err := cfg.validate(n); err != nil {
		return err
	}
	inj := cfg.inj
	if !cfg.injSet {
		inj = defaultInjector()
	}
	switch cfg.transport {
	case TransportTCP:
		return launchTCP(n, cfg.tcpOpts, inj, body)
	case TransportShm:
		if cfg.nodeOf != nil {
			topo, err := NewTopology(n, cfg.nodeOf)
			if err != nil {
				return err
			}
			if topo.NumNodes() > 1 {
				return launchHier(n, topo, cfg.shmOpts, cfg.tcpOpts, inj, body)
			}
			// One node: the hierarchy degenerates to plain shm, but keep
			// the topology visible so plan caches key on it consistently.
			return launchShmTopo(n, topo, cfg.shmOpts, inj, body)
		}
		return launchShm(n, cfg.shmOpts, inj, body)
	default:
		return launchInProc(n, inj, body)
	}
}

// Transport selects the wire a Launch'd world communicates over.
type Transport int

const (
	// TransportInProc is the default: one mailbox per rank, deliveries
	// are in-process channel sends.
	TransportInProc Transport = iota
	// TransportTCP carries all inter-rank traffic over loopback TCP
	// sockets, exercising a real network stack.
	TransportTCP
	// TransportShm carries traffic over mmap-backed shared-memory ring
	// buffers — the data path for ranks co-located on one node. Combine
	// with WithTopology to run a multi-node world two-level: shm within
	// each node, leader-aggregated TCP between nodes.
	TransportShm
)

// String names the transport the way flags and metrics label it.
func (t Transport) String() string {
	switch t {
	case TransportInProc:
		return "inproc"
	case TransportTCP:
		return "tcp"
	case TransportShm:
		return "shm"
	default:
		return fmt.Sprintf("transport(%d)", int(t))
	}
}

// launchConfig is the resolved option set of one Launch call.
type launchConfig struct {
	transport Transport
	tcpOpts   TCPOptions
	shmOpts   ShmOptions
	nodeOf    func(rank int) int
	inj       FaultInjector
	injSet    bool
}

// validate rejects malformed option combinations before any transport
// state is built; every failure wraps ErrBadOption.
func (cfg *launchConfig) validate(n int) error {
	if err := cfg.tcpOpts.Validate(); err != nil {
		return err
	}
	if err := cfg.shmOpts.Validate(); err != nil {
		return err
	}
	if cfg.nodeOf != nil && cfg.transport != TransportShm {
		return fmt.Errorf("%w: WithTopology requires WithTransport(TransportShm); the %s transport is flat", ErrBadOption, cfg.transport)
	}
	return nil
}

// LaunchOption configures one Launch call.
type LaunchOption func(*launchConfig)

// WithTransport selects the transport the world runs on.
func WithTransport(t Transport) LaunchOption {
	return func(cfg *launchConfig) { cfg.transport = t }
}

// WithTCPOptions selects the TCP transport with explicit per-endpoint
// options (it implies WithTransport(TransportTCP)). Under WithTopology
// the options instead tune the inter-node leader links, and the
// transport stays TransportShm.
func WithTCPOptions(opts TCPOptions) LaunchOption {
	return func(cfg *launchConfig) {
		if cfg.transport != TransportShm {
			cfg.transport = TransportTCP
		}
		cfg.tcpOpts = opts
	}
}

// WithShmOptions selects the shared-memory transport with explicit ring
// tuning (it implies WithTransport(TransportShm)).
func WithShmOptions(opts ShmOptions) LaunchOption {
	return func(cfg *launchConfig) {
		cfg.transport = TransportShm
		cfg.shmOpts = opts
	}
}

// WithTopology declares which node each rank lives on, turning the
// shared-memory world hierarchical: ranks on one node exchange over shm
// rings, and each node elects its lowest rank as leader to carry all of
// the node's inter-node traffic over TCP — O(nodes²) cross-node flows
// instead of O(ranks²). nodeOf must map every rank in [0,n) to a node
// id; ids need not be dense. Requires WithTransport(TransportShm) /
// WithShmOptions.
func WithTopology(nodeOf func(rank int) int) LaunchOption {
	return func(cfg *launchConfig) { cfg.nodeOf = nodeOf }
}

// WithFaultInjector wraps every rank's transport with inj: deliveries
// consult it for delays, drops (retried with bounded backoff),
// duplicates (deduplicated at the receiving mailbox), reorderings, and
// link severance. Passing it — even with a nil injector, which runs
// fault-free — overrides the process-wide default injector; omitting it
// keeps the SetDefaultFaultInjector behavior.
func WithFaultInjector(inj FaultInjector) LaunchOption {
	return func(cfg *launchConfig) {
		cfg.inj = inj
		cfg.injSet = true
	}
}
