package mpi

// Launch is the single entry point for running an n-rank world: it
// replaces the Run / RunChaos / RunTCP / RunTCPOpts / RunTCPChaos family
// with one call configured by functional options. The default is the
// in-process transport with the process-wide fault injector (see
// SetDefaultFaultInjector), i.e. exactly the old Run.
//
//	mpi.Launch(8, body)                                          // Run
//	mpi.Launch(8, body, mpi.WithFaultInjector(inj))              // RunChaos
//	mpi.Launch(8, body, mpi.WithTransport(mpi.TransportTCP))     // RunTCP
//	mpi.Launch(8, body, mpi.WithTCPOptions(opts))                // RunTCPOpts
//	mpi.Launch(8, body, mpi.WithTCPOptions(opts),
//	    mpi.WithFaultInjector(inj))                              // RunTCPChaos
//
// body runs once per rank (one goroutine each); Launch blocks until all
// ranks return and yields the joined errors. When a rank fails, the
// remaining ranks' pending operations are unblocked with ErrClosed so
// the world can drain.
func Launch(n int, body func(c *Comm) error, opts ...LaunchOption) error {
	cfg := launchConfig{tcpOpts: DefaultTCPOptions()}
	for _, o := range opts {
		o(&cfg)
	}
	inj := cfg.inj
	if !cfg.injSet {
		inj = defaultInjector()
	}
	switch cfg.transport {
	case TransportTCP:
		return launchTCP(n, cfg.tcpOpts, inj, body)
	default:
		return launchInProc(n, inj, body)
	}
}

// Transport selects the wire a Launch'd world communicates over.
type Transport int

const (
	// TransportInProc is the default: one mailbox per rank, deliveries
	// are in-process channel sends.
	TransportInProc Transport = iota
	// TransportTCP carries all inter-rank traffic over loopback TCP
	// sockets, exercising a real network stack.
	TransportTCP
)

// launchConfig is the resolved option set of one Launch call.
type launchConfig struct {
	transport Transport
	tcpOpts   TCPOptions
	inj       FaultInjector
	injSet    bool
}

// LaunchOption configures one Launch call.
type LaunchOption func(*launchConfig)

// WithTransport selects the transport the world runs on.
func WithTransport(t Transport) LaunchOption {
	return func(cfg *launchConfig) { cfg.transport = t }
}

// WithTCPOptions selects the TCP transport with explicit per-endpoint
// options (it implies WithTransport(TransportTCP)).
func WithTCPOptions(opts TCPOptions) LaunchOption {
	return func(cfg *launchConfig) {
		cfg.transport = TransportTCP
		cfg.tcpOpts = opts
	}
}

// WithFaultInjector wraps every rank's transport with inj: deliveries
// consult it for delays, drops (retried with bounded backoff),
// duplicates (deduplicated at the receiving mailbox), reorderings, and
// link severance. Passing it — even with a nil injector, which runs
// fault-free — overrides the process-wide default injector; omitting it
// keeps the SetDefaultFaultInjector behavior.
func WithFaultInjector(inj FaultInjector) LaunchOption {
	return func(cfg *launchConfig) {
		cfg.inj = inj
		cfg.injSet = true
	}
}
