package mpi

import (
	"encoding/binary"
	"fmt"
	"sort"
)

// Split partitions the communicator into disjoint sub-communicators, one
// per distinct color, the analogue of MPI_Comm_split. Every rank must
// call Split; ranks passing the same color end up in the same
// sub-communicator, ordered by (key, parent rank). A negative color
// returns nil (the rank joins no group), matching MPI_UNDEFINED.
//
// The returned communicator shares the parent's transport but uses its own
// message context, so traffic on it can never be confused with traffic on
// the parent or on sibling sub-communicators.
func (c *Comm) Split(color, key int) (*Comm, error) {
	// Exchange (color, key) among all ranks so each can derive its group.
	var mine [16]byte
	binary.LittleEndian.PutUint64(mine[0:], uint64(int64(color)))
	binary.LittleEndian.PutUint64(mine[8:], uint64(int64(key)))
	all, err := c.Allgather(mine[:])
	if err != nil {
		return nil, err
	}
	c.splitSeq++

	if color < 0 {
		return nil, nil
	}
	type member struct{ color, key, parentRank int }
	var members []member
	colorIndex := map[int]int{} // color -> dense index, in first-appearance order
	for r, buf := range all {
		if len(buf) != 16 {
			return nil, fmt.Errorf("mpi: malformed split exchange from rank %d", r)
		}
		col := int(int64(binary.LittleEndian.Uint64(buf[0:])))
		k := int(int64(binary.LittleEndian.Uint64(buf[8:])))
		if col < 0 {
			continue
		}
		if _, ok := colorIndex[col]; !ok {
			colorIndex[col] = len(colorIndex)
		}
		if col == color {
			members = append(members, member{col, k, r})
		}
	}
	sort.Slice(members, func(i, j int) bool {
		if members[i].key != members[j].key {
			return members[i].key < members[j].key
		}
		return members[i].parentRank < members[j].parentRank
	})
	group := make([]int, len(members))
	newRank := -1
	for i, m := range members {
		group[i] = c.group[m.parentRank]
		if m.parentRank == c.rank {
			newRank = i
		}
	}
	// Derive a context ID every member computes identically: mix the parent
	// context, the per-rank split sequence (in lockstep because Split is
	// collective), and the color's dense index.
	ctx := c.ctx*1000003 + uint32(c.splitSeq)*613 + uint32(colorIndex[color]) + 1
	return &Comm{
		rank:     newRank,
		group:    group,
		ctx:      ctx,
		world:    c.world,
		tr:       c.tr,
		box:      c.box,
		counters: c.counters,
		tel:      c.tel, // sub-communicator traffic shares the rank's telemetry
		topo:     c.topo,
	}, nil
}
