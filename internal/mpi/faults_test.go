package mpi

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"runtime"
	"testing"
	"time"

	"ddr/internal/datatype"
)

// funcInjector adapts a closure to the FaultInjector interface for tests.
type funcInjector func(src, dst, tag int, seq uint64, attempt int) Fault

func (f funcInjector) FaultFor(src, dst, tag int, seq uint64, attempt int) Fault {
	return f(src, dst, tag, seq, attempt)
}

// chaosPingPong runs a fixed message exchange on both transports under
// the injector and verifies every payload arrives intact and in order.
func chaosPingPong(t *testing.T, inj FaultInjector) {
	t.Helper()
	const rounds = 20
	body := func(c *Comm) error {
		peer := 1 - c.Rank()
		for i := 0; i < rounds; i++ {
			want := []byte(fmt.Sprintf("msg-%d-from-%d", i, c.Rank()))
			if err := c.Send(peer, 7, want); err != nil {
				return err
			}
			data, _, _, err := c.Recv(peer, 7)
			if err != nil {
				return err
			}
			wantPeer := []byte(fmt.Sprintf("msg-%d-from-%d", i, peer))
			if !bytes.Equal(data, wantPeer) {
				return fmt.Errorf("round %d: got %q, want %q", i, data, wantPeer)
			}
			PutBuffer(data)
		}
		return nil
	}
	if err := RunChaos(2, inj, body); err != nil {
		t.Fatalf("inproc: %v", err)
	}
	if err := RunTCPChaos(2, DefaultTCPOptions(), inj, body); err != nil {
		t.Fatalf("tcp: %v", err)
	}
}

// TestChaosDropRetryDelivers: a message whose first attempts all drop
// must still be delivered by the engine's retry loop, on both transports.
func TestChaosDropRetryDelivers(t *testing.T) {
	before := FaultStatsSnapshot()
	chaosPingPong(t, funcInjector(func(_, _, _ int, _ uint64, attempt int) Fault {
		return Fault{Drop: attempt < 2}
	}))
	after := FaultStatsSnapshot()
	if got := after.Retries - before.Retries; got == 0 {
		t.Error("no retries recorded")
	}
	if got := after.Failed - before.Failed; got != 0 {
		t.Errorf("%d links declared failed under a recoverable schedule", got)
	}
}

// TestChaosDuplicateDeduped: duplicating every message must not change
// what the receiver observes — the dedupe layers (mailbox sequence window
// in-process, frame sequence numbers on TCP) discard the copies.
func TestChaosDuplicateDeduped(t *testing.T) {
	before := FaultStatsSnapshot()
	chaosPingPong(t, funcInjector(func(_, _, _ int, _ uint64, _ int) Fault {
		return Fault{Duplicate: true}
	}))
	after := FaultStatsSnapshot()
	if got := after.Duplicates - before.Duplicates; got == 0 {
		t.Error("no duplicates recorded")
	}
}

// TestChaosDelayAndReorderDeliver: delays and cross-tag reordering are
// shape faults — everything still arrives, per-tag order preserved.
func TestChaosDelayAndReorderDeliver(t *testing.T) {
	chaosPingPong(t, funcInjector(func(_, _, _ int, seq uint64, _ int) Fault {
		return Fault{
			Delay:   time.Duration(seq%3) * 100 * time.Microsecond,
			Reorder: seq%4 == 0,
		}
	}))
}

// TestChaosSeverFailsReceiver: cutting the 0->1 link makes rank 1's
// receive fail with ErrPeerLost instead of hanging, on both transports.
// The reverse direction keeps working.
func TestChaosSeverFailsReceiver(t *testing.T) {
	inj := funcInjector(func(src, dst, _ int, _ uint64, _ int) Fault {
		return Fault{Sever: src == 0 && dst == 1}
	})
	body := func(c *Comm) error {
		if c.Rank() == 0 {
			c.Send(1, 7, []byte("doomed")) //nolint:errcheck // swallowed by the cut
			data, _, _, err := c.Recv(1, 8)
			if err != nil {
				return fmt.Errorf("healthy 1->0 direction failed: %w", err)
			}
			PutBuffer(data)
			return nil
		}
		if err := c.Send(0, 8, []byte("alive")); err != nil {
			return err
		}
		_, _, _, err := c.Recv(0, 7)
		if !errors.Is(err, ErrPeerLost) {
			return fmt.Errorf("recv on severed link: got %v, want ErrPeerLost", err)
		}
		return nil
	}
	if err := RunChaos(2, inj, body); err != nil {
		t.Fatalf("inproc: %v", err)
	}
	if err := RunTCPChaos(2, DefaultTCPOptions(), inj, body); err != nil {
		t.Fatalf("tcp: %v", err)
	}
}

// TestChaosRetriesExhaustedSeversLink: a message that drops on every
// attempt exhausts the bounded retry budget and fails the link with
// ErrPeerLost rather than spinning forever.
func TestChaosRetriesExhaustedSeversLink(t *testing.T) {
	inj := funcInjector(func(src, dst, _ int, _ uint64, _ int) Fault {
		return Fault{Drop: src == 0 && dst == 1}
	})
	before := FaultStatsSnapshot()
	err := RunChaos(2, inj, func(c *Comm) error {
		if c.Rank() == 0 {
			return c.Send(1, 7, []byte("black hole"))
		}
		_, _, _, err := c.Recv(0, 7)
		if !errors.Is(err, ErrPeerLost) {
			return fmt.Errorf("got %v, want ErrPeerLost", err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	after := FaultStatsSnapshot()
	if got := after.Failed - before.Failed; got == 0 {
		t.Error("no exhausted-retry link failure recorded")
	}
}

// TestRecvCtxTimeout: a receive with an expiring context fails with
// ErrExchangeTimeout instead of blocking forever.
func TestRecvCtxTimeout(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		if c.Rank() != 0 {
			return nil // never sends
		}
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
		defer cancel()
		start := time.Now()
		_, _, _, err := c.RecvCtx(ctx, 1, 7)
		if !errors.Is(err, ErrExchangeTimeout) {
			return fmt.Errorf("got %v, want ErrExchangeTimeout", err)
		}
		if el := time.Since(start); el > 5*time.Second {
			return fmt.Errorf("timed out only after %v", el)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestSendCtxExpired: a send under an already-expired context fails with
// ErrExchangeTimeout without touching the wire.
func TestSendCtxExpired(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		if c.Rank() != 0 {
			return nil
		}
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		if err := c.SendCtx(ctx, 1, 7, []byte("too late")); !errors.Is(err, ErrExchangeTimeout) {
			return fmt.Errorf("got %v, want ErrExchangeTimeout", err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestAlltoallwDeadlinePartial: when one rank never joins the exchange,
// the survivors' Alltoallw with a deadline returns a typed
// PartialExchangeError naming the absent rank — on both transports.
func TestAlltoallwDeadlinePartial(t *testing.T) {
	body := func(c *Comm) error {
		if c.Rank() == 2 {
			return nil // absent: contributes nothing, never calls the collective
		}
		send := []datatype.Type{
			datatype.Contiguous{Bytes: 4}, datatype.Contiguous{Bytes: 4}, datatype.Contiguous{Bytes: 4},
		}
		recv := []datatype.Type{
			datatype.Contiguous{Bytes: 4}, datatype.Contiguous{Bytes: 4}, datatype.Contiguous{Bytes: 4},
		}
		start := time.Now()
		err := c.AlltoallwOpt(make([]byte, 12), send, make([]byte, 12), recv,
			AlltoallwOptions{Pooled: true, Deadline: 300 * time.Millisecond})
		var pe *PartialExchangeError
		if !errors.As(err, &pe) {
			return fmt.Errorf("got %v (%T), want *PartialExchangeError", err, err)
		}
		if len(pe.LostPeers) != 1 || pe.LostPeers[0] != 2 {
			return fmt.Errorf("lost peers %v, want [2]", pe.LostPeers)
		}
		if !IsPeerLoss(err) {
			return fmt.Errorf("partial error %v does not match IsPeerLoss", err)
		}
		if el := time.Since(start); el > 10*time.Second {
			return fmt.Errorf("degraded only after %v", el)
		}
		return nil
	}
	if err := Run(3, body); err != nil {
		t.Fatalf("inproc: %v", err)
	}
	if err := RunTCP(3, body); err != nil {
		t.Fatalf("tcp: %v", err)
	}
}

// TestChaosNoGoroutineLeaks: worlds torn down under heavy chaos must not
// strand link workers, writers, or watchers.
func TestChaosNoGoroutineLeaks(t *testing.T) {
	base := runtime.NumGoroutine()
	inj := funcInjector(func(_, _, _ int, seq uint64, attempt int) Fault {
		return Fault{
			Drop:      seq%5 == 0 && attempt == 0,
			Duplicate: seq%3 == 0,
			Delay:     time.Duration(seq%2) * 200 * time.Microsecond,
			Sever:     seq > 40,
		}
	})
	for i := 0; i < 5; i++ {
		body := func(c *Comm) error {
			next := (c.Rank() + 1) % c.Size()
			prev := (c.Rank() + c.Size() - 1) % c.Size()
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer cancel()
			for j := 0; j < 60; j++ {
				c.Send(next, 7, []byte("x")) //nolint:errcheck // sever expected
				// Ranks break at different points once links start dying, so
				// a peer may stop sending before its link severs: bound the
				// wait instead of relying on loss notification alone.
				if data, _, _, err := c.RecvCtx(ctx, prev, 7); err == nil {
					PutBuffer(data)
				} else {
					break
				}
			}
			return nil
		}
		RunChaos(3, inj, body)                         //nolint:errcheck // fault outcomes vary
		RunTCPChaos(3, DefaultTCPOptions(), inj, body) //nolint:errcheck // fault outcomes vary
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= base+2 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			buf = buf[:runtime.Stack(buf, true)]
			t.Fatalf("goroutine leak: %d running, started with %d\n%s", runtime.NumGoroutine(), base, buf)
		}
		time.Sleep(50 * time.Millisecond)
	}
}
