// Hierarchical (two-level) transport: ranks grouped by node exchange
// over shared-memory rings within a node, and each node's lowest rank —
// its leader — carries all of the node's inter-node traffic over TCP.
// A cross-node message hops sender → sender's leader (shm ring) →
// destination's leader (TCP) → destination (shm ring), so the number of
// TCP flows in the world is O(nodes²) instead of O(ranks²): only
// leaders ever dial a socket.
//
// The relay rides the ordinary mailbox machinery. A cross-node payload
// is wrapped with a 40-byte relay header (final destination, original
// communicator ctx/src/tag, link sequence number, trace context) and
// delivered as a message on the reserved relayCtx communicator context;
// each leader runs one relay worker that receives relayCtx messages
// from its own mailbox and either forwards them to the destination
// node's leader (outbound) or unwraps them into the final destination's
// ring (inbound). One worker per leader keeps every (sender, receiver)
// pair's relayed traffic in FIFO order.
package mpi

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"ddr/internal/obs"
)

// relayCtx is the communicator context reserved for leader relay
// traffic. Split-derived contexts are minted by an arithmetic mix that
// never reaches the all-ones value in any realistic session.
const relayCtx = ^uint32(0)

// relayHeader layout (little endian):
//
//	off  0  dst   u32  final destination world rank
//	off  4  ctx   u32  original communicator context
//	off  8  src   u32  original sender world rank
//	off 12  tag   u32  original tag (int32)
//	off 16  seq   u64  original link sequence number (0 = unsequenced)
//	off 24  exch  u64  trace: exchange id
//	off 32  round u32  trace: round
//	off 36  span  u32  trace: span
const relayHeaderLen = 40

// Topology describes which node each rank of a world lives on. Build
// one with NewTopology (Launch does it for you via WithTopology); the
// same placement always yields the same Fingerprint, which plan caches
// mix into their keys so hierarchical schedules never collide with flat
// ones.
type Topology struct {
	nodeOf  []int   // world rank -> dense node index
	nodes   [][]int // node index -> member world ranks, ascending
	leaders []int   // node index -> leader world rank (lowest member)
	local   []int   // world rank -> index within its node's member list
	fp      uint64
}

// NewTopology evaluates nodeOf for every rank in [0,n) and normalizes
// the returned node ids (which need not be dense or ordered) into a
// dense topology. Every node elects its lowest rank as leader.
func NewTopology(n int, nodeOf func(rank int) int) (*Topology, error) {
	if n <= 0 {
		return nil, fmt.Errorf("mpi: world size %d must be positive", n)
	}
	if nodeOf == nil {
		return nil, fmt.Errorf("%w: WithTopology requires a non-nil nodeOf", ErrBadOption)
	}
	t := &Topology{nodeOf: make([]int, n), local: make([]int, n)}
	dense := map[int]int{}
	for rank := 0; rank < n; rank++ {
		id := nodeOf(rank)
		node, ok := dense[id]
		if !ok {
			node = len(t.nodes)
			dense[id] = node
			t.nodes = append(t.nodes, nil)
			t.leaders = append(t.leaders, rank)
		}
		t.nodeOf[rank] = node
		t.local[rank] = len(t.nodes[node])
		t.nodes[node] = append(t.nodes[node], rank)
	}
	h := uint64(0xcbf29ce484222325) // FNV-1a
	var b [8]byte
	for _, node := range t.nodeOf {
		binary.LittleEndian.PutUint64(b[:], uint64(node))
		for _, c := range b {
			h = (h ^ uint64(c)) * 0x100000001b3
		}
	}
	t.fp = h
	return t, nil
}

// NumNodes returns the number of distinct nodes.
func (t *Topology) NumNodes() int { return len(t.nodes) }

// NumRanks returns the world size the topology was built for.
func (t *Topology) NumRanks() int { return len(t.nodeOf) }

// NodeOf returns the dense node index rank lives on.
func (t *Topology) NodeOf(rank int) int { return t.nodeOf[rank] }

// Node returns the member world ranks of one node, ascending. The slice
// is shared; callers must not mutate it.
func (t *Topology) Node(node int) []int { return t.nodes[node] }

// Leader returns the leader world rank of one node.
func (t *Topology) Leader(node int) int { return t.leaders[node] }

// IsLeader reports whether rank is its node's leader.
func (t *Topology) IsLeader(rank int) bool { return t.leaders[t.nodeOf[rank]] == rank }

// Fingerprint is a stable 64-bit digest of the placement, mixed into
// plan-cache keys so plans compiled for one topology never replay on
// another. Nil topologies (flat worlds) fingerprint as 0.
func (t *Topology) Fingerprint() uint64 {
	if t == nil {
		return 0
	}
	return t.fp
}

// localIndex returns rank's index within its node's member list.
func (t *Topology) localIndex(rank int) int { return t.local[rank] }

// HierStats snapshots the hierarchical transport's relay counters.
type HierStats struct {
	RelayBytesOut int64 // aggregated payload+header bytes leaders forwarded over TCP
	RelayMsgsOut  int64 // cross-node messages forwarded over TCP
	RelayMsgsIn   int64 // cross-node messages unwrapped and fanned out locally
}

// hierWorld is the shared state of one hierarchical launch: per-node shm
// worlds, per-node leader TCP endpoints, and the relay workers.
type hierWorld struct {
	topo  *Topology
	boxes []*mailbox // world-rank indexed
	shms  []*shmWorld
	eps   []*TCPEndpoint // node-indexed, owned by that node's leader
	tcps  []*tcpTransport
	cfg   shmConfig

	relayBytes atomic.Int64
	relayOut   atomic.Int64
	relayIn    atomic.Int64
	relayObs   []atomic.Pointer[obs.Counter] // node-indexed, leader telemetry

	relayWG sync.WaitGroup
	closed  atomic.Bool
}

func (w *hierWorld) stats() HierStats {
	return HierStats{
		RelayBytesOut: w.relayBytes.Load(),
		RelayMsgsOut:  w.relayOut.Load(),
		RelayMsgsIn:   w.relayIn.Load(),
	}
}

// hierTransport is one rank's view of the hierarchical world.
type hierTransport struct {
	hw   *hierWorld
	rank int           // world rank
	node int
	shm  *shmTransport // this rank's producer view of its node's shm world
}

// Stats snapshots the world-wide relay counters (shared by all ranks).
func (t *hierTransport) Stats() HierStats { return t.hw.stats() }

// LeaderEndpointStats returns the TCP endpoint stats of each node's
// leader, node-indexed — the observable proof that inter-node flow
// count is O(nodes²): only len(topo.nodes) endpoints exist, each with
// at most NumNodes-1 outbound peer connections.
func (t *hierTransport) LeaderEndpointStats() []TCPStats {
	out := make([]TCPStats, len(t.hw.eps))
	for i, ep := range t.hw.eps {
		out[i] = ep.Stats()
	}
	return out
}

func (t *hierTransport) send(dst int, e envelope) error {
	topo := t.hw.topo
	if dst < 0 || dst >= topo.NumRanks() {
		return fmt.Errorf("mpi: hier world rank %d out of range", dst)
	}
	if topo.NodeOf(dst) == t.node {
		return t.shm.send(topo.localIndex(dst), e)
	}
	// Cross-node: wrap with the relay header; ownership of the eager
	// payload ends here (the wrapped copy travels on).
	renv := wrapRelay(dst, &e)
	if e.data != nil {
		PutBuffer(e.data)
	}
	if topo.IsLeader(t.rank) {
		return t.hw.forward(t.node, renv)
	}
	return t.shm.send(topo.localIndex(topo.Leader(t.node)), renv)
}

// sendZeroCopy delegates to the node shm world for co-located
// destinations; cross-node payloads always take the eager path (the
// relay header prepend forces a copy anyway).
func (t *hierTransport) sendZeroCopy(dst int, e envelope) (bool, error) {
	topo := t.hw.topo
	if dst < 0 || dst >= topo.NumRanks() || topo.NodeOf(dst) != t.node {
		return false, nil
	}
	return t.shm.sendZeroCopy(topo.localIndex(dst), e)
}

func (t *hierTransport) close() error { return t.hw.close() }

// wrapRelay builds the relayCtx envelope carrying e to dst: a fresh
// arena buffer with the 40-byte relay header followed by the payload.
func wrapRelay(dst int, e *envelope) envelope {
	buf := GetBuffer(relayHeaderLen + len(e.data))
	binary.LittleEndian.PutUint32(buf[0:], uint32(dst))
	binary.LittleEndian.PutUint32(buf[4:], e.ctx)
	binary.LittleEndian.PutUint32(buf[8:], uint32(e.src))
	binary.LittleEndian.PutUint32(buf[12:], uint32(int32(e.tag)))
	binary.LittleEndian.PutUint64(buf[16:], e.seq)
	binary.LittleEndian.PutUint64(buf[24:], e.tc.Exchange)
	binary.LittleEndian.PutUint32(buf[32:], e.tc.Round)
	binary.LittleEndian.PutUint32(buf[36:], e.tc.Span)
	copy(buf[relayHeaderLen:], e.data)
	// The outer envelope is unsequenced; the original link sequence
	// number rides in the header and is restored at final delivery, so
	// duplicate suppression happens at the true destination mailbox.
	return envelope{ctx: relayCtx, src: e.src, tag: 0, data: buf, tc: e.tc}
}

// unwrapRelay parses a relayCtx payload back into the original envelope
// metadata and the inner payload (a sub-slice of data).
func unwrapRelay(data []byte) (dst int, inner envelope, err error) {
	if len(data) < relayHeaderLen {
		return 0, inner, fmt.Errorf("mpi: relay message of %d bytes is shorter than its header", len(data))
	}
	dst = int(binary.LittleEndian.Uint32(data[0:]))
	inner = envelope{
		ctx: binary.LittleEndian.Uint32(data[4:]),
		src: int(binary.LittleEndian.Uint32(data[8:])),
		tag: int(int32(binary.LittleEndian.Uint32(data[12:]))),
		seq: binary.LittleEndian.Uint64(data[16:]),
		tc: TraceContext{
			Exchange: binary.LittleEndian.Uint64(data[24:]),
			Round:    binary.LittleEndian.Uint32(data[32:]),
			Span:     binary.LittleEndian.Uint32(data[36:]),
		},
		data: data[relayHeaderLen:],
	}
	return dst, inner, nil
}

// forward ships one wrapped relay envelope from node's leader to the
// destination node's leader over TCP, counting the aggregation.
func (w *hierWorld) forward(node int, renv envelope) error {
	dst, _, err := unwrapRelay(renv.data)
	if err != nil {
		PutBuffer(renv.data)
		return err
	}
	dstNode := w.topo.NodeOf(dst)
	n := int64(len(renv.data))
	w.relayBytes.Add(n)
	w.relayOut.Add(1)
	w.relayObs[node].Load().Add(n)
	// tcpTransport takes ownership of renv.data (recycled post-write).
	return w.tcps[node].send(dstNode, renv)
}

// relayWorker is the per-leader goroutine serving node's relay traffic:
// outbound wrapped messages fanned in over shm from co-located ranks,
// and inbound wrapped messages arriving over TCP from other leaders. It
// exits when the leader's mailbox closes, after draining every relay
// message already queued.
func (w *hierWorld) relayWorker(node int) {
	defer w.relayWG.Done()
	topo := w.topo
	leader := topo.Leader(node)
	box := w.boxes[leader]
	// The leader's producer view of its node's shm world, for fan-out.
	out := &shmTransport{w: w.shms[node], src: topo.localIndex(leader)}
	for {
		renv, err := box.get(nil, relayCtx, AnySource, AnyTag, nil, leader)
		if err != nil {
			return
		}
		dst, inner, perr := unwrapRelay(renv.data)
		if perr != nil {
			obs.Warnf("mpi: node %d relay: %v (dropping)", node, perr)
			PutBuffer(renv.data)
			continue
		}
		if topo.NodeOf(dst) != node {
			// Outbound leg: aggregate onto the leader's TCP flow to the
			// destination node's leader.
			if err := w.forward(node, renv); err != nil && !errors.Is(err, ErrClosed) {
				obs.Warnf("mpi: node %d relay to rank %d: %v", node, dst, err)
				w.boxes[dst].markLost(inner.src, fmt.Errorf("mpi: relay to rank %d failed: %v: %w", dst, err, ErrPeerLost))
			}
			continue
		}
		// Inbound leg: unwrap and fan out to the final destination.
		w.relayIn.Add(1)
		if dst == leader {
			final := inner
			if len(inner.data) > 0 {
				final.data = GetBuffer(len(inner.data))
				copy(final.data, inner.data)
			} else {
				final.data = nil
			}
			box.put(final)
			PutBuffer(renv.data)
			continue
		}
		// write copies the payload into the destination ring and leaves
		// ownership of the wrapped buffer here.
		if err := out.write(topo.localIndex(dst), inner); err != nil {
			obs.Warnf("mpi: node %d fan-out to rank %d: %v", node, dst, err)
		}
		PutBuffer(renv.data)
	}
}

func (w *hierWorld) close() error {
	if w.closed.Swap(true) {
		return nil
	}
	for _, ep := range w.eps {
		ep.Close() //nolint:errcheck // teardown is best effort
	}
	for _, s := range w.shms {
		s.close() //nolint:errcheck
	}
	return nil
}

// attachObs mirrors a rank's hierarchical activity into its telemetry:
// the shm instruments always, plus the leader's TCP endpoint and relay
// counter when the rank leads its node.
func (t *hierTransport) attachObs(tel *Telemetry) {
	t.shm.attachObs(tel)
	if !t.hw.topo.IsLeader(t.rank) {
		return
	}
	t.hw.eps[t.node].attachObs(tel)
	if tel == nil {
		t.hw.relayObs[t.node].Store(nil)
		return
	}
	t.hw.relayObs[t.node].Store(tel.hierRelayBytes)
}

// RunHier executes body on n ranks placed by nodeOf, over the two-level
// shm+TCP transport.
func RunHier(n int, nodeOf func(rank int) int, body func(c *Comm) error) error {
	return Launch(n, body, WithTransport(TransportShm), WithTopology(nodeOf))
}

// launchHier runs body on n in-process ranks over the two-level
// transport; see Launch for the contract. topo must have at least two
// nodes (one node degenerates to launchShmTopo).
func launchHier(n int, topo *Topology, shmOpts ShmOptions, tcpOpts TCPOptions, inj FaultInjector, body func(c *Comm) error) error {
	if topo.NumRanks() != n {
		return fmt.Errorf("mpi: topology covers %d ranks, world has %d", topo.NumRanks(), n)
	}
	boxes := make([]*mailbox, n)
	for i := range boxes {
		boxes[i] = newMailbox()
	}
	nodes := topo.NumNodes()
	w := &hierWorld{
		topo:     topo,
		boxes:    boxes,
		shms:     make([]*shmWorld, nodes),
		eps:      make([]*TCPEndpoint, nodes),
		tcps:     make([]*tcpTransport, nodes),
		relayObs: make([]atomic.Pointer[obs.Counter], nodes),
	}
	fail := func(err error) error {
		w.close() //nolint:errcheck
		return err
	}
	// One shm world per node over that node's mailboxes.
	for node := 0; node < nodes; node++ {
		members := topo.Node(node)
		nodeBoxes := make([]*mailbox, len(members))
		for i, r := range members {
			nodeBoxes[i] = boxes[r]
		}
		sw, err := newShmWorld(len(members), shmOpts, nodeBoxes)
		if err != nil {
			return fail(err)
		}
		w.shms[node] = sw
	}
	// One TCP endpoint per node, listening into the leader's mailbox.
	if err := tcpOpts.Validate(); err != nil {
		return fail(err)
	}
	addrs := make([]string, nodes)
	for node := 0; node < nodes; node++ {
		ep, err := newTCPEndpointOn("127.0.0.1:0", boxes[topo.Leader(node)], tcpOpts)
		if err != nil {
			return fail(err)
		}
		ep.selfRank.Store(int32(topo.Leader(node)))
		w.eps[node] = ep
		addrs[node] = ep.Addr()
	}
	for node := 0; node < nodes; node++ {
		w.tcps[node] = &tcpTransport{ep: w.eps[node], addrs: addrs}
		w.relayWG.Add(1)
		go w.relayWorker(node)
	}

	trs := make([]transport, n)
	for rank := 0; rank < n; rank++ {
		node := topo.NodeOf(rank)
		var tr transport = &hierTransport{
			hw:   w,
			rank: rank,
			node: node,
			shm:  &shmTransport{w: w.shms[node], src: topo.localIndex(rank)},
		}
		if inj != nil {
			tr = newFaultTransport(tr, inj, rank, func(dst, src int, err error) {
				if dst >= 0 && dst < len(boxes) {
					boxes[dst].markLost(src, err)
				}
			})
		}
		trs[rank] = tr
	}
	errs := make([]error, n)
	var wg sync.WaitGroup
	for rank := 0; rank < n; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			c := &Comm{
				rank:     rank,
				group:    identityGroup(n),
				tr:       trs[rank],
				box:      boxes[rank],
				counters: newTraffic(n),
				topo:     topo,
			}
			c.world = c
			if err := body(c); err != nil {
				errs[rank] = fmt.Errorf("rank %d: %w", rank, err)
				for _, b := range boxes {
					b.close(fmt.Errorf("mpi: rank %d failed: %w", rank, err))
				}
			}
		}(rank)
	}
	wg.Wait()
	// Fault transports flush their queues into the raw transports first;
	// then closing the mailboxes releases the relay workers (which drain
	// every relay message already queued before exiting), and finally the
	// endpoints and rings go down.
	for _, tr := range trs {
		if ft, ok := tr.(*faultTransport); ok {
			ft.close() //nolint:errcheck
		}
	}
	for _, b := range boxes {
		b.close(nil)
	}
	w.relayWG.Wait()
	w.close() //nolint:errcheck
	return errors.Join(errs...)
}

// NodesOf is a convenience nodeOf for WithTopology: it spreads n ranks
// over the given number of nodes in contiguous blocks (ranks 0..k-1 on
// node 0, and so on), the layout cluster schedulers produce.
func NodesOf(n, numNodes int) func(rank int) int {
	if numNodes < 1 {
		numNodes = 1
	}
	per := (n + numNodes - 1) / numNodes
	return func(rank int) int { return rank / per }
}
