package mpi

import (
	"fmt"
	"testing"
)

// BenchmarkPingPong measures round-trip latency per transport and message
// size.
func BenchmarkPingPong(b *testing.B) {
	for _, tr := range transports {
		for _, size := range []int{16, 4096, 1 << 20} {
			b.Run(fmt.Sprintf("%s/%dB", tr.name, size), func(b *testing.B) {
				b.SetBytes(int64(size))
				err := tr.run(2, func(c *Comm) error {
					msg := make([]byte, size)
					if c.Rank() == 0 {
						b.ResetTimer()
						for i := 0; i < b.N; i++ {
							if err := c.Send(1, 0, msg); err != nil {
								return err
							}
							if _, _, _, err := c.Recv(1, 1); err != nil {
								return err
							}
						}
					} else {
						for i := 0; i < b.N; i++ {
							if _, _, _, err := c.Recv(0, 0); err != nil {
								return err
							}
							if err := c.Send(0, 1, msg); err != nil {
								return err
							}
						}
					}
					return nil
				})
				if err != nil {
					b.Fatal(err)
				}
			})
		}
	}
}

// benchStorm drives an all-to-all storm of small messages: every rank
// sends perPeer messages of size bytes to every other rank, then drains
// the matching receives. This is the traffic shape of a redistribution
// round's control plane plus many small overlaps, and it is dominated by
// per-frame transport overhead (syscalls, allocations, lock handoffs).
func benchStorm(b *testing.B, run func(int, func(*Comm) error) error, ranks, perPeer, size int) {
	b.SetBytes(int64((ranks - 1) * perPeer * size))
	err := run(ranks, func(c *Comm) error {
		msg := make([]byte, size)
		if err := c.Barrier(); err != nil {
			return err
		}
		if c.Rank() == 0 {
			b.ResetTimer()
		}
		for i := 0; i < b.N; i++ {
			for m := 0; m < perPeer; m++ {
				for peer := 0; peer < c.Size(); peer++ {
					if peer == c.Rank() {
						continue
					}
					if err := c.Send(peer, m, msg); err != nil {
						return err
					}
				}
			}
			for m := 0; m < perPeer; m++ {
				for peer := 0; peer < c.Size(); peer++ {
					if peer == c.Rank() {
						continue
					}
					data, _, _, err := c.Recv(peer, m)
					if err != nil {
						return err
					}
					// Model the exchange engine's consumer contract:
					// payloads go back to the arena once unpacked.
					PutBuffer(data)
				}
			}
		}
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
}

// benchLarge streams one large payload per iteration from rank 0 to rank
// 1, with a small acknowledgement closing the loop — the bulk-transfer
// shape of a big redistribution overlap.
func benchLarge(b *testing.B, run func(int, func(*Comm) error) error, size int) {
	b.SetBytes(int64(size))
	err := run(2, func(c *Comm) error {
		if err := c.Barrier(); err != nil {
			return err
		}
		if c.Rank() == 0 {
			payload := make([]byte, size)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := c.Send(1, 0, payload); err != nil {
					return err
				}
				if _, _, _, err := c.Recv(1, 1); err != nil {
					return err
				}
			}
			return nil
		}
		for i := 0; i < b.N; i++ {
			data, _, _, err := c.Recv(0, 0)
			if err != nil {
				return err
			}
			PutBuffer(data)
			if err := c.Send(0, 1, []byte{1}); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
}

// BenchmarkTCPExchange measures the socket transport on the two traffic
// shapes that dominate multi-process redistributions — a 16-rank storm
// of small frames and a 64 MiB bulk payload — with the in-process
// channel transport as the reference. make bench-json records the
// results in BENCH_tcp.json so the transport's trajectory stays visible.
func BenchmarkTCPExchange(b *testing.B) {
	runNoChunk := func(n int, body func(*Comm) error) error {
		return RunTCPOpts(n, TCPOptions{ChunkThreshold: -1}, body)
	}
	b.Run("storm/16ranks/4KiB/tcp", func(b *testing.B) {
		benchStorm(b, RunTCP, 16, 4, 4096)
	})
	b.Run("storm/16ranks/4KiB/inproc", func(b *testing.B) {
		benchStorm(b, Run, 16, 4, 4096)
	})
	b.Run("large/64MiB/tcp", func(b *testing.B) {
		benchLarge(b, RunTCP, 64<<20)
	})
	b.Run("large/64MiB/tcp-nochunk", func(b *testing.B) {
		benchLarge(b, runNoChunk, 64<<20)
	})
	b.Run("large/64MiB/inproc", func(b *testing.B) {
		benchLarge(b, Run, 64<<20)
	})
}

// BenchmarkCollectives measures the cost of each collective at a fixed
// world size over the in-process transport.
func BenchmarkCollectives(b *testing.B) {
	const n = 8
	payload := make([]byte, 4096)
	cases := []struct {
		name string
		op   func(c *Comm) error
	}{
		{"Barrier", func(c *Comm) error { return c.Barrier() }},
		{"Bcast", func(c *Comm) error {
			_, err := c.Bcast(0, payload)
			return err
		}},
		{"Allgather", func(c *Comm) error {
			_, err := c.Allgather(payload)
			return err
		}},
		{"AllreduceFloat64", func(c *Comm) error {
			_, err := c.AllreduceFloat64([]float64{1, 2, 3, 4}, OpSum)
			return err
		}},
		{"Alltoallv", func(c *Comm) error {
			send := make([][]byte, n)
			for i := range send {
				send[i] = payload[:512]
			}
			_, err := c.Alltoallv(send)
			return err
		}},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			err := Run(n, func(c *Comm) error {
				if c.Rank() == 0 {
					b.ResetTimer()
				}
				if err := c.Barrier(); err != nil {
					return err
				}
				for i := 0; i < b.N; i++ {
					if err := tc.op(c); err != nil {
						return err
					}
				}
				return nil
			})
			if err != nil {
				b.Fatal(err)
			}
		})
	}
}

// BenchmarkShmExchange measures the shared-memory transport on the same
// two traffic shapes as BenchmarkTCPExchange — the 16-rank small-frame
// storm and the 64 MiB bulk payload — against the TCP-loopback and
// in-process channel transports. make bench-shm records the results in
// BENCH_shm.json; the acceptance bar is shm at >= 3x TCP loopback on
// the 64 MiB payload.
func BenchmarkShmExchange(b *testing.B) {
	b.Run("storm/16ranks/4KiB/shm", func(b *testing.B) {
		benchStorm(b, RunShm, 16, 4, 4096)
	})
	b.Run("storm/16ranks/4KiB/tcp", func(b *testing.B) {
		benchStorm(b, RunTCP, 16, 4, 4096)
	})
	b.Run("storm/16ranks/4KiB/inproc", func(b *testing.B) {
		benchStorm(b, Run, 16, 4, 4096)
	})
	b.Run("large/64MiB/shm", func(b *testing.B) {
		benchLarge(b, RunShm, 64<<20)
	})
	b.Run("large/64MiB/tcp", func(b *testing.B) {
		benchLarge(b, RunTCP, 64<<20)
	})
	b.Run("large/64MiB/inproc", func(b *testing.B) {
		benchLarge(b, Run, 64<<20)
	})
}

// BenchmarkHierExchange measures the two-level transport's headline
// case: a 64-rank all-to-all storm on a 4-node placement, where leader
// aggregation reduces the O(P²) socket flows of flat TCP to O(nodes²),
// versus the same storm on flat TCP loopback and on flat shm.
func BenchmarkHierExchange(b *testing.B) {
	const ranks, nodes = 64, 4
	runHier := func(n int, body func(*Comm) error) error {
		return RunHier(n, NodesOf(n, nodes), body)
	}
	b.Run("storm/64ranks/1KiB/hier-4node", func(b *testing.B) {
		benchStorm(b, runHier, ranks, 2, 1024)
	})
	b.Run("storm/64ranks/1KiB/tcp", func(b *testing.B) {
		benchStorm(b, RunTCP, ranks, 2, 1024)
	})
	b.Run("storm/64ranks/1KiB/shm", func(b *testing.B) {
		benchStorm(b, RunShm, ranks, 2, 1024)
	})
}
