package mpi

import (
	"fmt"
	"testing"
)

// BenchmarkPingPong measures round-trip latency per transport and message
// size.
func BenchmarkPingPong(b *testing.B) {
	for _, tr := range transports {
		for _, size := range []int{16, 4096, 1 << 20} {
			b.Run(fmt.Sprintf("%s/%dB", tr.name, size), func(b *testing.B) {
				b.SetBytes(int64(size))
				err := tr.run(2, func(c *Comm) error {
					msg := make([]byte, size)
					if c.Rank() == 0 {
						b.ResetTimer()
						for i := 0; i < b.N; i++ {
							if err := c.Send(1, 0, msg); err != nil {
								return err
							}
							if _, _, _, err := c.Recv(1, 1); err != nil {
								return err
							}
						}
					} else {
						for i := 0; i < b.N; i++ {
							if _, _, _, err := c.Recv(0, 0); err != nil {
								return err
							}
							if err := c.Send(0, 1, msg); err != nil {
								return err
							}
						}
					}
					return nil
				})
				if err != nil {
					b.Fatal(err)
				}
			})
		}
	}
}

// BenchmarkCollectives measures the cost of each collective at a fixed
// world size over the in-process transport.
func BenchmarkCollectives(b *testing.B) {
	const n = 8
	payload := make([]byte, 4096)
	cases := []struct {
		name string
		op   func(c *Comm) error
	}{
		{"Barrier", func(c *Comm) error { return c.Barrier() }},
		{"Bcast", func(c *Comm) error {
			_, err := c.Bcast(0, payload)
			return err
		}},
		{"Allgather", func(c *Comm) error {
			_, err := c.Allgather(payload)
			return err
		}},
		{"AllreduceFloat64", func(c *Comm) error {
			_, err := c.AllreduceFloat64([]float64{1, 2, 3, 4}, OpSum)
			return err
		}},
		{"Alltoallv", func(c *Comm) error {
			send := make([][]byte, n)
			for i := range send {
				send[i] = payload[:512]
			}
			_, err := c.Alltoallv(send)
			return err
		}},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			err := Run(n, func(c *Comm) error {
				if c.Rank() == 0 {
					b.ResetTimer()
				}
				if err := c.Barrier(); err != nil {
					return err
				}
				for i := 0; i < b.N; i++ {
					if err := tc.op(c); err != nil {
						return err
					}
				}
				return nil
			})
			if err != nil {
				b.Fatal(err)
			}
		})
	}
}
