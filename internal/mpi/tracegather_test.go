package mpi

import (
	"testing"
	"time"

	"ddr/internal/trace"
)

// TestGatherTraceClockCorrection gives each rank a recorder whose
// timebase is deliberately skewed and checks that the ping-pong offset
// estimation recovers the skew, so merged spans land on rank 0's
// timebase.
func TestGatherTraceClockCorrection(t *testing.T) {
	const n = 4
	// Rank r's recorder runs ahead of rank 0's by skew[r].
	skew := []time.Duration{0, 50 * time.Millisecond, -20 * time.Millisecond, 300 * time.Millisecond}
	var got *MergedTrace
	err := Run(n, func(c *Comm) error {
		rank := c.Rank()
		rec := trace.NewRecorderAt(time.Now().Add(-skew[rank]))
		// One span per rank, stamped "now" in the rank's own skewed
		// timebase.
		rec.Add(trace.Event{Rank: rank, Name: "work", Start: rec.Now(), Dur: time.Millisecond})
		merged, err := GatherTrace(c, rec)
		if err != nil {
			return err
		}
		if rank == 0 {
			got = merged
		} else if merged != nil {
			t.Errorf("rank %d got a non-nil merge result", rank)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got == nil {
		t.Fatal("rank 0 got no merged trace")
	}
	if len(got.Events) != n {
		t.Fatalf("merged %d events, want %d", len(got.Events), n)
	}
	// In-process ping-pongs finish in microseconds; allow a generous
	// margin for scheduler noise.
	const tol = 10 * time.Millisecond
	for r := 1; r < n; r++ {
		if diff := got.Offsets[r] - skew[r]; diff < -tol || diff > tol {
			t.Errorf("rank %d offset = %v, want %v ± %v (rtt %v)", r, got.Offsets[r], skew[r], tol, got.RTTs[r])
		}
	}
	// After correction every rank's span start sits near rank 0's: the
	// uncorrected rank-3 start would be ~300ms off.
	var base time.Duration
	for _, e := range got.Events {
		if e.Rank == 0 {
			base = e.Start
		}
	}
	for _, e := range got.Events {
		if diff := e.Start - base; diff < -tol || diff > tol {
			t.Errorf("rank %d corrected start %v is %v from rank 0's %v", e.Rank, e.Start, diff, base)
		}
	}
}

// A shared recorder (the in-process worlds share one) must not
// double-count: each rank contributes only its own lane.
func TestGatherTraceSharedRecorder(t *testing.T) {
	const n = 3
	rec := trace.NewRecorder()
	var got *MergedTrace
	err := Run(n, func(c *Comm) error {
		rec.Add(trace.Event{Rank: c.Rank(), Name: "lane", Start: time.Duration(c.Rank()) * time.Microsecond})
		if err := c.Barrier(); err != nil {
			return err
		}
		merged, err := GatherTrace(c, rec)
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			got = merged
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got == nil || len(got.Events) != n {
		t.Fatalf("merged events = %+v, want exactly %d (one per rank)", got, n)
	}
	seen := map[int]int{}
	for _, e := range got.Events {
		seen[e.Rank]++
	}
	for r := 0; r < n; r++ {
		if seen[r] != 1 {
			t.Fatalf("rank %d contributed %d events, want 1 (dedup failed): %v", r, seen[r], seen)
		}
	}
}

// A nil recorder participates in the collective and contributes nothing.
func TestGatherTraceNilRecorder(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		merged, err := GatherTrace(c, nil)
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			if merged == nil {
				t.Error("rank 0 got nil merge")
			} else if len(merged.Events) != 0 {
				t.Errorf("nil recorders produced %d events", len(merged.Events))
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
