package mpi_test

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"os/exec"
	"strings"
	"testing"

	"ddr/internal/mpi"
)

// TestTCPMultiProcess verifies the TCP transport across real OS process
// boundaries, not just goroutines: the test re-executes its own binary as
// worker processes, exchanges endpoint addresses over pipes, and runs a
// barrier + allreduce + ring shift across the processes.
func TestTCPMultiProcess(t *testing.T) {
	if os.Getenv("DDR_TCP_WORKER") != "" {
		return // worker mode is driven by TestTCPWorker below
	}
	if testing.Short() {
		t.Skip("multi-process test skipped in -short mode")
	}
	const n = 3
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}

	// Rank 0 lives in this process.
	ep, err := mpi.NewTCPEndpoint("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ep.Close()
	addrs := make([]string, n)
	addrs[0] = ep.Addr()

	type worker struct {
		cmd   *exec.Cmd
		stdin io.WriteCloser
		out   *bufio.Reader
	}
	workers := make([]worker, 0, n-1)
	for rank := 1; rank < n; rank++ {
		cmd := exec.Command(exe, "-test.run", "TestTCPWorker$", "-test.v")
		cmd.Env = append(os.Environ(),
			fmt.Sprintf("DDR_TCP_WORKER=%d", rank),
			fmt.Sprintf("DDR_TCP_SIZE=%d", n))
		stdin, err := cmd.StdinPipe()
		if err != nil {
			t.Fatal(err)
		}
		stdout, err := cmd.StdoutPipe()
		if err != nil {
			t.Fatal(err)
		}
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		workers = append(workers, worker{cmd: cmd, stdin: stdin, out: bufio.NewReader(stdout)})
	}
	defer func() {
		for _, w := range workers {
			w.cmd.Process.Kill() //nolint:errcheck // cleanup on failure paths
		}
	}()

	// Collect each worker's address (it prints "ADDR <addr>").
	for i, w := range workers {
		for {
			line, err := w.out.ReadString('\n')
			if err != nil {
				t.Fatalf("worker %d: reading address: %v", i+1, err)
			}
			if strings.HasPrefix(line, "ADDR ") {
				addrs[i+1] = strings.TrimSpace(strings.TrimPrefix(line, "ADDR "))
				break
			}
		}
	}
	// Distribute the full address list.
	for _, w := range workers {
		if _, err := fmt.Fprintln(w.stdin, strings.Join(addrs, " ")); err != nil {
			t.Fatal(err)
		}
	}

	c, err := ep.Join(0, addrs)
	if err != nil {
		t.Fatal(err)
	}
	if err := tcpWorkerBody(c); err != nil {
		t.Fatalf("rank 0: %v", err)
	}
	for i, w := range workers {
		if err := w.cmd.Wait(); err != nil {
			t.Fatalf("worker %d failed: %v", i+1, err)
		}
	}
}

// TestTCPWorker is the worker-process entry point; it is a no-op unless
// launched by TestTCPMultiProcess with the DDR_TCP_WORKER environment.
func TestTCPWorker(t *testing.T) {
	rankStr := os.Getenv("DDR_TCP_WORKER")
	if rankStr == "" {
		t.Skip("not in worker mode")
	}
	var rank, size int
	if _, err := fmt.Sscan(rankStr, &rank); err != nil {
		t.Fatal(err)
	}
	if _, err := fmt.Sscan(os.Getenv("DDR_TCP_SIZE"), &size); err != nil {
		t.Fatal(err)
	}
	ep, err := mpi.NewTCPEndpoint("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ep.Close()
	fmt.Printf("ADDR %s\n", ep.Addr())
	os.Stdout.Sync() //nolint:errcheck

	line, err := bufio.NewReader(os.Stdin).ReadString('\n')
	if err != nil {
		t.Fatalf("reading address list: %v", err)
	}
	addrs := strings.Fields(line)
	if len(addrs) != size {
		t.Fatalf("got %d addresses, want %d", len(addrs), size)
	}
	c, err := ep.Join(rank, addrs)
	if err != nil {
		t.Fatal(err)
	}
	if err := tcpWorkerBody(c); err != nil {
		t.Fatalf("rank %d: %v", rank, err)
	}
}

// tcpWorkerBody is the cross-process program every rank runs.
func tcpWorkerBody(c *mpi.Comm) error {
	if err := c.Barrier(); err != nil {
		return err
	}
	n := c.Size()
	sum, err := c.AllreduceInt64([]int64{int64(c.Rank())}, mpi.OpSum)
	if err != nil {
		return err
	}
	if want := int64(n * (n - 1) / 2); sum[0] != want {
		return fmt.Errorf("allreduce sum %d, want %d", sum[0], want)
	}
	dst := (c.Rank() + 1) % n
	src := (c.Rank() - 1 + n) % n
	got, err := c.Sendrecv(dst, src, 11, []byte{byte(c.Rank())})
	if err != nil {
		return err
	}
	if int(got[0]) != src {
		return fmt.Errorf("ring shift received %d, want %d", got[0], src)
	}
	return c.Barrier()
}
