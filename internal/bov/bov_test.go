package bov

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"ddr/internal/grid"
	"ddr/internal/mpi"
)

func tempVolume(t *testing.T, h Header) (*File, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "vol.bov")
	f, err := Create(path, h)
	if err != nil {
		t.Fatal(err)
	}
	return f, path
}

func TestHeaderValidation(t *testing.T) {
	if _, err := Create(filepath.Join(t.TempDir(), "x"), Header{Dims: [3]int{0, 1, 1}, ElemSize: 1}); err == nil {
		t.Error("zero dim accepted")
	}
	if _, err := Create(filepath.Join(t.TempDir(), "x"), Header{Dims: [3]int{1, 1, 1}, ElemSize: 0}); err == nil {
		t.Error("zero element accepted")
	}
}

func TestCreateOpenRoundTrip(t *testing.T) {
	h := Header{Dims: [3]int{10, 6, 4}, ElemSize: 2, Kind: "uint16 test"}
	f, path := tempVolume(t, h)
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	g, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	if g.Header() != h {
		t.Errorf("header %+v, want %+v", g.Header(), h)
	}
	if g.Header().TotalBytes() != 10*6*4*2 {
		t.Errorf("total bytes %d", g.Header().TotalBytes())
	}
	// The file is pre-sized.
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if info.Size() < h.TotalBytes() {
		t.Errorf("file size %d smaller than payload %d", info.Size(), h.TotalBytes())
	}
}

func TestOpenRejectsGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "junk")
	if err := os.WriteFile(path, []byte("this is not a bov file at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := Open(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Error("missing file accepted")
	}
}

// fillPattern gives each element a value derived from its coordinates.
func fillPattern(box grid.Box, elem int) []byte {
	out := make([]byte, box.Volume()*elem)
	i := 0
	for z := 0; z < box.Dims[2]; z++ {
		for y := 0; y < box.Dims[1]; y++ {
			for x := 0; x < box.Dims[0]; x++ {
				v := byte(box.Offset[0] + x + 3*(box.Offset[1]+y) + 7*(box.Offset[2]+z))
				for b := 0; b < elem; b++ {
					out[i] = v + byte(b)
					i++
				}
			}
		}
	}
	return out
}

func TestWriteReadBoxes(t *testing.T) {
	h := Header{Dims: [3]int{16, 12, 8}, ElemSize: 2}
	f, _ := tempVolume(t, h)
	defer f.Close()

	// Tile the domain with bricks, write each, read back individually and
	// as other shapes.
	bricks := grid.Bricks3D(h.Domain(), 2, 2, 2)
	for _, b := range bricks {
		if err := f.WriteBox(b, fillPattern(b, 2)); err != nil {
			t.Fatal(err)
		}
	}
	for _, b := range bricks {
		got, err := f.ReadBox(b)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, fillPattern(b, 2)) {
			t.Fatalf("brick %v mismatch", b)
		}
	}
	// Cross-shaped reads (slabs) must also match.
	for _, slab := range grid.Slabs(h.Domain(), 2, 4) {
		got, err := f.ReadBox(slab)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, fillPattern(slab, 2)) {
			t.Fatalf("slab %v mismatch", slab)
		}
	}
	// The whole domain.
	got, err := f.ReadBox(h.Domain())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, fillPattern(h.Domain(), 2)) {
		t.Error("full-domain read mismatch")
	}
}

func TestWriteBoxValidation(t *testing.T) {
	h := Header{Dims: [3]int{4, 4, 4}, ElemSize: 1}
	f, _ := tempVolume(t, h)
	defer f.Close()
	if err := f.WriteBox(grid.Box3(0, 0, 0, 2, 2, 2), make([]byte, 7)); err == nil {
		t.Error("short buffer accepted")
	}
	if err := f.WriteBox(grid.Box3(3, 3, 3, 2, 2, 2), make([]byte, 8)); err == nil {
		t.Error("out-of-domain box accepted")
	}
	if _, err := f.ReadBox(grid.Box2(0, 0, 2, 2)); err == nil {
		t.Error("2D box accepted")
	}
}

func TestRunCoalescing(t *testing.T) {
	h := Header{Dims: [3]int{8, 4, 6}, ElemSize: 4}
	f, _ := tempVolume(t, h)
	defer f.Close()
	// Full plane slab: one run.
	if got := f.RunCount(grid.Box3(0, 0, 2, 8, 4, 3)); got != 1 {
		t.Errorf("slab runs = %d, want 1", got)
	}
	// Full rows but partial height: one run per z.
	if got := f.RunCount(grid.Box3(0, 1, 0, 8, 2, 6)); got != 6 {
		t.Errorf("row-span runs = %d, want 6", got)
	}
	// Generic brick: one run per (y,z).
	if got := f.RunCount(grid.Box3(2, 1, 1, 3, 2, 4)); got != 8 {
		t.Errorf("brick runs = %d, want 8", got)
	}
}

// TestParallelWriteThenRead is the checkpoint/restart scenario: 8 ranks
// write their bricks concurrently through private handles; later 4 ranks
// read slabs back and verify.
func TestParallelWriteThenRead(t *testing.T) {
	h := Header{Dims: [3]int{20, 12, 8}, ElemSize: 1}
	path := filepath.Join(t.TempDir(), "ckpt.bov")
	f, err := Create(path, h)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	bricks := grid.Bricks3D(h.Domain(), 2, 2, 2)
	err = mpi.Launch(8, func(c *mpi.Comm) error {
		v, err := Open(path)
		if err != nil {
			return err
		}
		defer v.Close()
		return v.WriteBox(bricks[c.Rank()], fillPattern(bricks[c.Rank()], 1))
	})
	if err != nil {
		t.Fatal(err)
	}
	slabs := grid.Slabs(h.Domain(), 2, 4)
	err = mpi.Launch(4, func(c *mpi.Comm) error {
		v, err := Open(path)
		if err != nil {
			return err
		}
		defer v.Close()
		got, err := v.ReadBox(slabs[c.Rank()])
		if err != nil {
			return err
		}
		if !bytes.Equal(got, fillPattern(slabs[c.Rank()], 1)) {
			t.Errorf("rank %d slab mismatch", c.Rank())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRandomBoxesProperty(t *testing.T) {
	h := Header{Dims: [3]int{15, 9, 7}, ElemSize: 3}
	f, _ := tempVolume(t, h)
	defer f.Close()
	if err := f.WriteBox(h.Domain(), fillPattern(h.Domain(), 3)); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 200; i++ {
		box := grid.RandomBoxIn(rng, h.Domain())
		got, err := f.ReadBox(box)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, fillPattern(box, 3)) {
			t.Fatalf("random box %v mismatch", box)
		}
	}
}

func TestChecksum(t *testing.T) {
	h := Header{Dims: [3]int{8, 4, 4}, ElemSize: 2}
	f, _ := tempVolume(t, h)
	defer f.Close()
	empty, err := f.Checksum()
	if err != nil {
		t.Fatal(err)
	}
	if err := f.WriteBox(h.Domain(), fillPattern(h.Domain(), 2)); err != nil {
		t.Fatal(err)
	}
	full, err := f.Checksum()
	if err != nil {
		t.Fatal(err)
	}
	if full == empty {
		t.Error("checksum unchanged after writing data")
	}
	again, err := f.Checksum()
	if err != nil {
		t.Fatal(err)
	}
	if again != full {
		t.Error("checksum not deterministic")
	}
	// A single-byte flip must change the checksum.
	box := grid.Box3(3, 2, 1, 1, 1, 1)
	data, err := f.ReadBox(box)
	if err != nil {
		t.Fatal(err)
	}
	data[0] ^= 0xFF
	if err := f.WriteBox(box, data); err != nil {
		t.Fatal(err)
	}
	flipped, err := f.Checksum()
	if err != nil {
		t.Fatal(err)
	}
	if flipped == full {
		t.Error("checksum blind to corruption")
	}
}
