// Package bov implements a shared-file "brick of values" volume format
// with parallel box-granular access — the stand-in for the MPI-IO style
// collective file access the paper's I/O goals assume. Any number of
// ranks (goroutines or processes) can concurrently write disjoint boxes
// of the domain into one file and read arbitrary boxes back, each through
// its own handle, using positional I/O only.
//
// The file layout is an 8-byte magic, a little-endian uint32 header
// length, a JSON header, and the raw row-major samples (x fastest). Runs
// that span full rows (and full planes) are coalesced into single
// positional operations, so slab-shaped access — the layout DDR then
// redistributes from — costs one large sequential I/O per rank while
// brick-shaped access degenerates into many small strided operations.
// That asymmetry is exactly the trade the paper's use case A exploits.
package bov

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"

	"ddr/internal/grid"
)

// Magic identifies a bov file.
const Magic = "DDRBOV1\n"

// Header describes the stored volume.
type Header struct {
	Dims     [3]int `json:"dims"` // width, height, depth
	ElemSize int    `json:"elem_size"`
	// Kind is free-form metadata ("uint16 CT", "float32 vorticity", ...).
	Kind string `json:"kind,omitempty"`
}

// Domain returns the volume's box at origin.
func (h Header) Domain() grid.Box {
	return grid.Box3(0, 0, 0, h.Dims[0], h.Dims[1], h.Dims[2])
}

// TotalBytes returns the raw payload size.
func (h Header) TotalBytes() int64 {
	return int64(h.Dims[0]) * int64(h.Dims[1]) * int64(h.Dims[2]) * int64(h.ElemSize)
}

func (h Header) validate() error {
	if h.Dims[0] < 1 || h.Dims[1] < 1 || h.Dims[2] < 1 {
		return fmt.Errorf("bov: invalid dims %v", h.Dims)
	}
	if h.ElemSize < 1 || h.ElemSize > 64 {
		return fmt.Errorf("bov: invalid element size %d", h.ElemSize)
	}
	return nil
}

// File is one handle onto a bov volume. Handles are safe for concurrent
// use across goroutines only insofar as the underlying positional I/O is;
// for parallel access give each rank its own handle via Open.
type File struct {
	f         *os.File
	header    Header
	dataStart int64
	writable  bool
}

// Create makes (or truncates) the volume file at path and sizes it for
// the full payload, so concurrent writers can immediately WriteBox
// anywhere in the domain.
func Create(path string, h Header) (*File, error) {
	if err := h.validate(); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	hdrJSON, err := json.Marshal(h)
	if err != nil {
		f.Close()
		return nil, err
	}
	var lenBuf [4]byte
	binary.LittleEndian.PutUint32(lenBuf[:], uint32(len(hdrJSON)))
	if _, err := f.Write([]byte(Magic)); err != nil {
		f.Close()
		return nil, err
	}
	if _, err := f.Write(lenBuf[:]); err != nil {
		f.Close()
		return nil, err
	}
	if _, err := f.Write(hdrJSON); err != nil {
		f.Close()
		return nil, err
	}
	dataStart := int64(len(Magic)) + 4 + int64(len(hdrJSON))
	if err := f.Truncate(dataStart + h.TotalBytes()); err != nil {
		f.Close()
		return nil, err
	}
	return &File{f: f, header: h, dataStart: dataStart, writable: true}, nil
}

// Open opens an existing volume file read-write.
func Open(path string) (*File, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return nil, err
	}
	magic := make([]byte, len(Magic))
	if _, err := f.ReadAt(magic, 0); err != nil {
		f.Close()
		return nil, fmt.Errorf("bov: reading magic: %w", err)
	}
	if string(magic) != Magic {
		f.Close()
		return nil, fmt.Errorf("bov: %s is not a bov file", path)
	}
	var lenBuf [4]byte
	if _, err := f.ReadAt(lenBuf[:], int64(len(Magic))); err != nil {
		f.Close()
		return nil, err
	}
	hdrLen := int64(binary.LittleEndian.Uint32(lenBuf[:]))
	if hdrLen > 1<<20 {
		f.Close()
		return nil, fmt.Errorf("bov: implausible header length %d", hdrLen)
	}
	hdrJSON := make([]byte, hdrLen)
	if _, err := f.ReadAt(hdrJSON, int64(len(Magic))+4); err != nil {
		f.Close()
		return nil, err
	}
	var h Header
	if err := json.Unmarshal(hdrJSON, &h); err != nil {
		f.Close()
		return nil, fmt.Errorf("bov: header: %w", err)
	}
	if err := h.validate(); err != nil {
		f.Close()
		return nil, err
	}
	return &File{f: f, header: h, dataStart: int64(len(Magic)) + 4 + hdrLen, writable: true}, nil
}

// Header returns the volume description.
func (v *File) Header() Header { return v.header }

// Close releases the handle.
func (v *File) Close() error { return v.f.Close() }

// runs invokes fn(fileOffset, bufOffset, length) for each contiguous run
// of the box within the file, coalescing full rows and full planes.
func (v *File) runs(box grid.Box, fn func(fileOff, bufOff int64, n int) error) error {
	h := v.header
	if box.NDims != 3 {
		return fmt.Errorf("bov: box %v is not 3D", box)
	}
	if !h.Domain().Contains(box) {
		return fmt.Errorf("bov: box %v outside volume %v", box, h.Domain())
	}
	es := int64(h.ElemSize)
	w, ht := int64(h.Dims[0]), int64(h.Dims[1])
	rowRun := int64(box.Dims[0]) * es
	fullRow := box.Dims[0] == h.Dims[0]
	fullPlane := fullRow && box.Dims[1] == h.Dims[1]

	var bufOff int64
	if fullPlane {
		n := rowRun * int64(box.Dims[1]) * int64(box.Dims[2])
		start := (int64(box.Offset[2])*ht*w + int64(box.Offset[1])*w + int64(box.Offset[0])) * es
		return fn(v.dataStart+start, 0, int(n))
	}
	for z := 0; z < box.Dims[2]; z++ {
		gz := int64(box.Offset[2] + z)
		if fullRow {
			n := rowRun * int64(box.Dims[1])
			start := (gz*ht*w + int64(box.Offset[1])*w + int64(box.Offset[0])) * es
			if err := fn(v.dataStart+start, bufOff, int(n)); err != nil {
				return err
			}
			bufOff += n
			continue
		}
		for y := 0; y < box.Dims[1]; y++ {
			gy := int64(box.Offset[1] + y)
			start := (gz*ht*w + gy*w + int64(box.Offset[0])) * es
			if err := fn(v.dataStart+start, bufOff, int(rowRun)); err != nil {
				return err
			}
			bufOff += rowRun
		}
	}
	return nil
}

// WriteBox stores data (row-major, x fastest) into the given box of the
// volume. Concurrent WriteBox calls on disjoint boxes are safe.
func (v *File) WriteBox(box grid.Box, data []byte) error {
	if want := box.Volume() * v.header.ElemSize; len(data) != want {
		return fmt.Errorf("bov: %d bytes for box %v, want %d", len(data), box, want)
	}
	return v.runs(box, func(fileOff, bufOff int64, n int) error {
		_, err := v.f.WriteAt(data[bufOff:bufOff+int64(n)], fileOff)
		return err
	})
}

// ReadBox loads the given box of the volume.
func (v *File) ReadBox(box grid.Box) ([]byte, error) {
	out := make([]byte, box.Volume()*v.header.ElemSize)
	err := v.runs(box, func(fileOff, bufOff int64, n int) error {
		_, err := v.f.ReadAt(out[bufOff:bufOff+int64(n)], fileOff)
		return err
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Checksum computes the IEEE CRC-32 of the full payload by streaming it
// in fixed windows, for checkpoint integrity verification (the payload
// may far exceed memory).
func (v *File) Checksum() (uint32, error) {
	crc := crc32.NewIEEE()
	buf := make([]byte, 1<<20)
	total := v.header.TotalBytes()
	for off := int64(0); off < total; {
		n := int64(len(buf))
		if total-off < n {
			n = total - off
		}
		if _, err := v.f.ReadAt(buf[:n], v.dataStart+off); err != nil {
			return 0, err
		}
		crc.Write(buf[:n]) //nolint:errcheck // hash writes cannot fail
		off += n
	}
	return crc.Sum32(), nil
}

// RunCount reports how many positional I/O operations accessing box
// costs — the quantity that makes slab access cheap and brick access
// expensive on this format.
func (v *File) RunCount(box grid.Box) int {
	count := 0
	v.runs(box, func(_, _ int64, _ int) error { //nolint:errcheck
		count++
		return nil
	})
	return count
}
