package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"ddr/internal/trace"
)

// traceEvent is one entry of the Chrome trace-event JSON format, the
// legacy format ui.perfetto.dev and chrome://tracing both load directly.
// Spans are "X" (complete) events; lane names are "M" (metadata) events.
type traceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"` // microseconds from the recorder origin
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// traceFile is the JSON object wrapper ({"traceEvents": [...]}).
type traceFile struct {
	TraceEvents     []traceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// WriteTraceEvents renders the given span events as Chrome trace-event
// JSON: one Perfetto process per rank (pid = tid = rank, so merged
// multi-rank traces get one labeled track group per rank), timestamps and
// durations in microseconds from the recorder origin, and the span's
// attributed bytes plus any distributed trace context (exchange ID,
// round, waited-on peer) in args. Events are sorted by (rank, start) so
// the output is deterministic regardless of completion order.
func WriteTraceEvents(w io.Writer, events []trace.Event) error {
	sorted := append([]trace.Event(nil), events...)
	sort.SliceStable(sorted, func(i, j int) bool {
		if sorted[i].Rank != sorted[j].Rank {
			return sorted[i].Rank < sorted[j].Rank
		}
		return sorted[i].Start < sorted[j].Start
	})

	out := traceFile{DisplayTimeUnit: "ms", TraceEvents: []traceEvent{}}
	seenRank := map[int]bool{}
	for _, e := range sorted {
		if !seenRank[e.Rank] {
			seenRank[e.Rank] = true
			out.TraceEvents = append(out.TraceEvents,
				traceEvent{
					Name: "process_name",
					Ph:   "M",
					Pid:  e.Rank,
					Tid:  e.Rank,
					Args: map[string]any{"name": fmt.Sprintf("rank %d", e.Rank)},
				},
				traceEvent{
					Name: "thread_name",
					Ph:   "M",
					Pid:  e.Rank,
					Tid:  e.Rank,
					Args: map[string]any{"name": "ddr"},
				})
		}
		ev := traceEvent{
			Name: e.Name,
			Cat:  "ddr",
			Ph:   "X",
			Ts:   float64(e.Start) / 1e3,
			Dur:  float64(e.Dur) / 1e3,
			Pid:  e.Rank,
			Tid:  e.Rank,
		}
		args := map[string]any{}
		if e.Bytes != 0 {
			args["bytes"] = e.Bytes
		}
		if e.Exchange != 0 {
			args["exchange"] = fmt.Sprintf("%016x", e.Exchange)
			if e.Round >= 0 {
				args["round"] = e.Round
			}
			if e.Peer >= 0 {
				args["peer"] = e.Peer
			}
		}
		if len(args) != 0 {
			ev.Args = args
		}
		out.TraceEvents = append(out.TraceEvents, ev)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// WriteTrace renders everything the recorder collected as Perfetto-
// loadable JSON. A nil recorder writes an empty but valid trace.
func WriteTrace(w io.Writer, rec *trace.Recorder) error {
	var events []trace.Event
	if rec != nil {
		events = rec.Events()
	}
	return WriteTraceEvents(w, events)
}
