package obs

import (
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Handler returns an http.Handler serving the registry in Prometheus
// text exposition format, suitable for mounting at /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}

// Server is a running telemetry HTTP endpoint.
type Server struct {
	// Addr is the resolved listen address (useful with ":0").
	Addr string
	srv  *http.Server
	ln   net.Listener
}

// FlightRecHandler serves the process-wide flight recorder ring: the
// plain-text dump by default, a JSON array with ?format=json, and 404
// when no recorder has been installed via SetGlobalFlightRecorder.
func FlightRecHandler(w http.ResponseWriter, r *http.Request) {
	f := GlobalFlightRecorder()
	if f == nil {
		http.Error(w, "flight recorder not attached (run with -flightrec)", http.StatusNotFound)
		return
	}
	if r.URL.Query().Get("format") == "json" {
		w.Header().Set("Content-Type", "application/json")
		f.WriteJSON(w)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	f.Dump(w)
}

// Serve binds addr and serves /metrics for the registry, the flight-
// recorder ring at /debug/flightrec, plus the net/http/pprof handlers
// under /debug/pprof/, returning once the listener is bound. reg may be
// nil, in which case /metrics reports an empty document. Close the
// returned server to release the port.
func Serve(addr string, reg *Registry) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	mux.Handle("/metrics", reg.Handler())
	mux.HandleFunc("/debug/flightrec", FlightRecHandler)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s := &Server{
		Addr: ln.Addr().String(),
		srv:  &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second},
		ln:   ln,
	}
	go s.srv.Serve(ln)
	return s, nil
}

// Close stops the server and releases its listener.
func (s *Server) Close() error {
	if s == nil {
		return nil
	}
	return s.srv.Close()
}
