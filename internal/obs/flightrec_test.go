package obs

import (
	"bytes"
	"runtime/debug"
	"strings"
	"sync"
	"testing"
)

func TestFlightRecorderNilIsInert(t *testing.T) {
	var f *FlightRecorder
	f.Record(FlightEvent{Kind: FlightSend})
	if s := f.Snapshot(); s != nil {
		t.Fatalf("nil recorder snapshot = %v", s)
	}
	if f.Cap() != 0 {
		t.Fatalf("nil recorder cap = %d", f.Cap())
	}
	if f.DumpOnce("reason") {
		t.Fatal("nil recorder claims to have dumped")
	}
	var buf bytes.Buffer
	f.Dump(&buf) // must not panic
}

func TestFlightRecorderOrderAndWraparound(t *testing.T) {
	f := NewFlightRecorder(1) // rounds up to the 64-slot minimum
	if f.Cap() != 64 {
		t.Fatalf("cap = %d, want 64", f.Cap())
	}
	// Overfill by 2x: only the newest Cap() events survive, oldest-first.
	total := 2 * f.Cap()
	for i := 0; i < total; i++ {
		f.Record(FlightEvent{Kind: FlightFrameIn, Rank: 0, Peer: 1, Seq: uint64(i + 1)})
	}
	events := f.Snapshot()
	if len(events) != f.Cap() {
		t.Fatalf("snapshot has %d events, want %d", len(events), f.Cap())
	}
	for i, ev := range events {
		want := uint64(total - f.Cap() + i + 1)
		if ev.Seq != want {
			t.Fatalf("event %d has seq %d, want %d", i, ev.Seq, want)
		}
	}
}

func TestFlightRecorderFieldRoundTrip(t *testing.T) {
	f := NewFlightRecorder(64)
	in := FlightEvent{
		At: 123456789, Kind: FlightSever, Rank: 3, Peer: -1, Tag: -7,
		Round: 2, Seq: 42, Exchange: 0xfeedface12345678, Bytes: -9,
	}
	f.Record(in)
	events := f.Snapshot()
	if len(events) != 1 {
		t.Fatalf("snapshot has %d events", len(events))
	}
	if events[0] != in {
		t.Fatalf("round trip mismatch:\n in  %+v\n out %+v", in, events[0])
	}
}

// The ring must stay coherent — and race-detector-clean — with many
// writers racing a snapshotting reader.
func TestFlightRecorderConcurrent(t *testing.T) {
	f := NewFlightRecorder(128)
	const writers = 4
	const perWriter = 2000
	stop := make(chan struct{})
	readerDone := make(chan struct{})
	go func() {
		defer close(readerDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, ev := range f.Snapshot() {
				if ev.Kind != FlightFrameIn || ev.At == 0 {
					t.Errorf("torn event surfaced: %+v", ev)
					return
				}
			}
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				f.Record(FlightEvent{Kind: FlightFrameIn, Rank: int32(w), Seq: uint64(i)})
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	<-readerDone
}

// Record on an attached ring must not allocate: it runs on frame-decode
// and fault-verdict hot paths.
func TestFlightRecorderRecordZeroAlloc(t *testing.T) {
	f := NewFlightRecorder(256)
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	allocs := testing.AllocsPerRun(1000, func() {
		f.Record(FlightEvent{Kind: FlightSend, Rank: 1, Peer: 2, Tag: 3, Seq: 4, Exchange: 5, Bytes: 6})
	})
	if allocs != 0 {
		t.Fatalf("Record allocates %.1f times per call, want 0", allocs)
	}
}

func TestFlightDumpOnce(t *testing.T) {
	f := NewFlightRecorder(64)
	f.Record(FlightEvent{Kind: FlightPeerLost, Rank: 0, Peer: 3})
	var buf bytes.Buffer
	prev := SetFlightDumpOutput(&buf)
	defer SetFlightDumpOutput(prev)
	if !f.DumpOnce("rank 0 lost peer 3") {
		t.Fatal("first DumpOnce did not dump")
	}
	if f.DumpOnce("again") {
		t.Fatal("second DumpOnce dumped again")
	}
	out := buf.String()
	if !strings.Contains(out, "rank 0 lost peer 3") || !strings.Contains(out, "peer-lost") {
		t.Fatalf("dump missing reason or event:\n%s", out)
	}
}
