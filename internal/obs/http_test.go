package obs

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// A scrape arriving while hot paths are registering and incrementing
// instruments must return a well-formed document (and stay clean under
// the race detector, which make verify runs this package with).
func TestMetricsScrapeWhileWriting(t *testing.T) {
	reg := NewRegistry()
	srv := httptest.NewServer(reg.Handler())
	defer srv.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := reg.Counter(fmt.Sprintf("scrape_race_total_%d", w), "scrape race test counter.", RankLabel(w))
			h := reg.Histogram(fmt.Sprintf("scrape_race_seconds_%d", w), "scrape race test histogram.", LatencyBuckets, RankLabel(w))
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				c.Inc()
				h.Observe(float64(i%10) / 1000)
			}
		}(w)
	}
	for i := 0; i < 20; i++ {
		resp, err := http.Get(srv.URL)
		if err != nil {
			t.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("scrape %d returned %d", i, resp.StatusCode)
		}
		if i > 5 && !strings.Contains(string(body), "scrape_race_total_0") {
			t.Fatalf("scrape %d missing registered series:\n%.400s", i, body)
		}
	}
	close(stop)
	wg.Wait()
}

func TestFlightRecHandler(t *testing.T) {
	prev := GlobalFlightRecorder()
	defer SetGlobalFlightRecorder(prev)

	// Detached: 404 with a hint.
	SetGlobalFlightRecorder(nil)
	rr := httptest.NewRecorder()
	FlightRecHandler(rr, httptest.NewRequest(http.MethodGet, "/debug/flightrec", nil))
	if rr.Code != http.StatusNotFound {
		t.Fatalf("detached handler returned %d, want 404", rr.Code)
	}
	if !strings.Contains(rr.Body.String(), "-flightrec") {
		t.Fatalf("detached response missing hint: %q", rr.Body.String())
	}

	// Attached: text dump by default, JSON with ?format=json.
	f := NewFlightRecorder(64)
	f.Record(FlightEvent{Kind: FlightSend, Rank: 2, Peer: 5, Tag: 9, Bytes: 1024})
	SetGlobalFlightRecorder(f)

	rr = httptest.NewRecorder()
	FlightRecHandler(rr, httptest.NewRequest(http.MethodGet, "/debug/flightrec", nil))
	if rr.Code != http.StatusOK {
		t.Fatalf("text handler returned %d", rr.Code)
	}
	if ct := rr.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("text content type = %q", ct)
	}
	if body := rr.Body.String(); !strings.Contains(body, "send") || !strings.Contains(body, "peer=5") {
		t.Fatalf("text dump missing event:\n%s", body)
	}

	rr = httptest.NewRecorder()
	FlightRecHandler(rr, httptest.NewRequest(http.MethodGet, "/debug/flightrec?format=json", nil))
	if rr.Code != http.StatusOK {
		t.Fatalf("json handler returned %d", rr.Code)
	}
	if ct := rr.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("json content type = %q", ct)
	}
	if body := rr.Body.String(); !strings.Contains(body, `"kind":"send"`) || !strings.Contains(body, `"peer":5`) {
		t.Fatalf("json dump missing event:\n%s", body)
	}
}

// The mounted server must expose /debug/flightrec alongside /metrics.
func TestServeMountsFlightRec(t *testing.T) {
	prev := GlobalFlightRecorder()
	defer SetGlobalFlightRecorder(prev)
	f := NewFlightRecorder(64)
	f.Record(FlightEvent{Kind: FlightReconnect, Rank: 1, Peer: 0})
	SetGlobalFlightRecorder(f)

	srv, err := Serve("127.0.0.1:0", NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := http.Get("http://" + srv.Addr + "/debug/flightrec")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "reconnect") {
		t.Fatalf("served flightrec = %d:\n%s", resp.StatusCode, body)
	}
}
