// Package obs is the process-wide telemetry layer of the DDR stack: a
// concurrency-safe metrics registry (counters, gauges, fixed-bucket
// histograms with per-rank labels) exportable in Prometheus text format,
// plus Chrome trace-event / Perfetto JSON export over trace.Recorder
// timelines and an HTTP server mounting /metrics and net/http/pprof.
//
// Every instrument handle is nil-safe: methods on a nil *Counter, *Gauge,
// or *Histogram are no-ops, and a nil *Registry hands out nil instruments.
// Hot paths therefore register their handles once and call them
// unconditionally — when telemetry is not attached the calls cost a nil
// check and allocate nothing, so instrumentation can stay woven through
// the runtime permanently.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Label is one key/value pair attached to an instrument, rendered in
// Prometheus form as key="value".
type Label struct {
	Key, Value string
}

// RankLabel is the conventional label identifying which rank an
// instrument belongs to; every per-rank instrument in the stack uses it.
func RankLabel(rank int) Label {
	return Label{Key: "rank", Value: strconv.Itoa(rank)}
}

// Counter is a monotonically increasing int64 metric.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter. No-op on a nil counter.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 for a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an int64 metric that can go up and down (queue depths,
// in-flight operations).
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge value. No-op on a nil gauge.
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// Add moves the gauge by n (negative to decrease). No-op on a nil gauge.
func (g *Gauge) Add(n int64) {
	if g == nil {
		return
	}
	g.v.Add(n)
}

// SetMax raises the gauge to n if n exceeds the current value, leaving
// it unchanged otherwise — a lock-free high-water mark for concurrent
// writers (peak staging bytes, deepest queue). No-op on a nil gauge.
func (g *Gauge) SetMax(n int64) {
	if g == nil {
		return
	}
	for {
		cur := g.v.Load()
		if n <= cur || g.v.CompareAndSwap(cur, n) {
			return
		}
	}
}

// Value returns the current gauge value (0 for a nil gauge).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// FloatGauge is a float64 metric that can go up and down, for ratios
// and rates that an int64 Gauge cannot carry (overlap efficiency,
// utilization fractions). The value is stored as float64 bits in an
// atomic word, so Set and Value never take a lock.
type FloatGauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge value. No-op on a nil gauge.
func (g *FloatGauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Value returns the current gauge value (0 for a nil gauge).
func (g *FloatGauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket histogram. Buckets are upper bounds in
// ascending order; an implicit +Inf bucket catches the overflow. The sum
// is kept as float64 bits updated by CAS so Observe never takes a lock.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1, last is +Inf
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits
}

// Observe records one value. No-op on a nil histogram.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// Bounds are few (tens); linear scan beats binary search in practice
	// and keeps the loop branch-predictable for latency-shaped data.
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveSince records the seconds elapsed since start. No-op on a nil
// histogram — callers should still avoid the time.Now() when they know
// telemetry is detached.
func (h *Histogram) ObserveSince(start time.Time) {
	if h == nil {
		return
	}
	h.Observe(time.Since(start).Seconds())
}

// Count returns the number of observations (0 for a nil histogram).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values (0 for a nil histogram).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// ExponentialBuckets returns n upper bounds starting at start and growing
// by factor, for histograms whose values span orders of magnitude.
func ExponentialBuckets(start, factor float64, n int) []float64 {
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// LatencyBuckets covers 1µs to ~16s in powers of two — the operating
// range of everything from an in-process mailbox append to a cross-host
// collective.
var LatencyBuckets = ExponentialBuckets(1e-6, 2, 25)

// ByteBuckets covers 64B to 4GiB in powers of four, for message and
// round payload sizes.
var ByteBuckets = ExponentialBuckets(64, 4, 14)

// instrument is the registry's view of a metric at export time.
type instrument interface {
	write(w io.Writer, name, labels string)
	typeName() string
}

func (c *Counter) typeName() string    { return "counter" }
func (g *Gauge) typeName() string      { return "gauge" }
func (g *FloatGauge) typeName() string { return "gauge" }
func (h *Histogram) typeName() string  { return "histogram" }

// family groups all label variants of one metric name.
type family struct {
	help string
	typ  string
	// keys preserves registration order of label sets for stable export.
	keys  []string
	insts map[string]instrument
}

// Registry holds registered instruments and renders them in Prometheus
// text exposition format. All methods are safe for concurrent use; the
// zero value is not usable — construct with NewRegistry. A nil *Registry
// is valid and hands out nil (no-op) instruments.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	names    []string // registration order
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}}
}

// labelKey renders labels canonically (sorted by key) for identity and
// export.
func labelKey(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	return b.String()
}

func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// lookup returns the instrument registered under (name, labels), creating
// it with mk on first use. Registering the same name and labels twice
// returns the original instrument, so handles can be re-derived freely.
func (r *Registry) lookup(name, help, typ string, labels []Label, mk func() instrument) instrument {
	key := labelKey(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{help: help, typ: typ, insts: map[string]instrument{}}
		r.families[name] = f
		r.names = append(r.names, name)
	}
	if inst, ok := f.insts[key]; ok {
		return inst
	}
	inst := mk()
	f.insts[key] = inst
	f.keys = append(f.keys, key)
	return inst
}

// Counter registers (or re-derives) a counter. A nil registry returns a
// nil, no-op counter.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	inst := r.lookup(name, help, "counter", labels, func() instrument { return &Counter{} })
	c, ok := inst.(*Counter)
	if !ok {
		return nil // name already registered with another type; disable quietly
	}
	return c
}

// Gauge registers (or re-derives) a gauge. A nil registry returns a nil,
// no-op gauge.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	inst := r.lookup(name, help, "gauge", labels, func() instrument { return &Gauge{} })
	g, ok := inst.(*Gauge)
	if !ok {
		return nil
	}
	return g
}

// FloatGauge registers (or re-derives) a float-valued gauge. A nil
// registry returns a nil, no-op gauge.
func (r *Registry) FloatGauge(name, help string, labels ...Label) *FloatGauge {
	if r == nil {
		return nil
	}
	inst := r.lookup(name, help, "gauge", labels, func() instrument { return &FloatGauge{} })
	g, ok := inst.(*FloatGauge)
	if !ok {
		return nil
	}
	return g
}

// Histogram registers (or re-derives) a histogram with the given upper
// bounds (ascending; +Inf is implicit). A nil registry returns a nil,
// no-op histogram. Re-deriving ignores the buckets argument and returns
// the original instrument.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	inst := r.lookup(name, help, "histogram", labels, func() instrument {
		bounds := append([]float64(nil), buckets...)
		return &Histogram{bounds: bounds, counts: make([]atomic.Int64, len(bounds)+1)}
	})
	h, ok := inst.(*Histogram)
	if !ok {
		return nil
	}
	return h
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func (c *Counter) write(w io.Writer, name, labels string) {
	fmt.Fprintf(w, "%s%s %d\n", name, braced(labels), c.Value())
}

func (g *Gauge) write(w io.Writer, name, labels string) {
	fmt.Fprintf(w, "%s%s %d\n", name, braced(labels), g.Value())
}

func (g *FloatGauge) write(w io.Writer, name, labels string) {
	fmt.Fprintf(w, "%s%s %s\n", name, braced(labels), formatFloat(g.Value()))
}

func (h *Histogram) write(w io.Writer, name, labels string) {
	cum := int64(0)
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(w, "%s_bucket%s %d\n", name, braced(joinLabels(labels, `le="`+formatFloat(b)+`"`)), cum)
	}
	cum += h.counts[len(h.bounds)].Load()
	fmt.Fprintf(w, "%s_bucket%s %d\n", name, braced(joinLabels(labels, `le="+Inf"`)), cum)
	fmt.Fprintf(w, "%s_sum%s %s\n", name, braced(labels), formatFloat(h.Sum()))
	fmt.Fprintf(w, "%s_count%s %d\n", name, braced(labels), h.Count())
}

func braced(labels string) string {
	if labels == "" {
		return ""
	}
	return "{" + labels + "}"
}

func joinLabels(a, b string) string {
	if a == "" {
		return b
	}
	return a + "," + b
}

// WritePrometheus renders every registered instrument in Prometheus text
// exposition format (version 0.0.4). Families appear in registration
// order, label variants within a family likewise.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	type entry struct {
		labels string
		inst   instrument
	}
	type section struct {
		name, help, typ string
		entries         []entry
	}
	// Snapshot under the lock so export never races with registration;
	// the instrument values themselves are atomic and read afterwards.
	r.mu.Lock()
	sections := make([]section, 0, len(r.names))
	for _, n := range r.names {
		f := r.families[n]
		s := section{name: n, help: f.help, typ: f.typ}
		for _, key := range f.keys {
			s.entries = append(s.entries, entry{labels: key, inst: f.insts[key]})
		}
		sections = append(sections, s)
	}
	r.mu.Unlock()

	for _, s := range sections {
		if s.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", s.name, s.help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", s.name, s.typ); err != nil {
			return err
		}
		for _, e := range s.entries {
			e.inst.write(w, s.name, e.labels)
		}
	}
	return nil
}
