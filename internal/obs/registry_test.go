package obs

import (
	"bytes"
	"fmt"
	"io"
	"math"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("reqs_total", "requests", RankLabel(3))
	c.Add(5)
	c.Inc()
	if got := c.Value(); got != 6 {
		t.Fatalf("counter = %d, want 6", got)
	}
	g := reg.Gauge("depth", "queue depth")
	g.Set(10)
	g.Add(-3)
	if got := g.Value(); got != 7 {
		t.Fatalf("gauge = %d, want 7", got)
	}
}

// TestGaugeSetMax covers the monotone raise used by high-watermark
// gauges: lower values never regress the reading, and concurrent raisers
// settle on the maximum.
func TestGaugeSetMax(t *testing.T) {
	reg := NewRegistry()
	g := reg.Gauge("peak", "high watermark")
	g.SetMax(40)
	g.SetMax(25) // lower: no effect
	if got := g.Value(); got != 40 {
		t.Fatalf("gauge = %d, want 40", got)
	}
	g.SetMax(60)
	if got := g.Value(); got != 60 {
		t.Fatalf("gauge = %d, want 60", got)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for v := int64(0); v <= 1000; v++ {
				g.SetMax(v*8 + int64(w))
			}
		}(w)
	}
	wg.Wait()
	if got := g.Value(); got != 8007 {
		t.Fatalf("concurrent SetMax = %d, want 8007", got)
	}
	var nilG *Gauge
	nilG.SetMax(5) // nil-safe like every registry instrument
}

func TestHistogramBuckets(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("lat", "latency", []float64{0.001, 0.01, 0.1})
	for _, v := range []float64{0.0005, 0.002, 0.02, 0.5, 5} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if math.Abs(h.Sum()-5.5225) > 1e-9 {
		t.Fatalf("sum = %g", h.Sum())
	}
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE lat histogram",
		`lat_bucket{le="0.001"} 1`,
		`lat_bucket{le="0.01"} 2`,
		`lat_bucket{le="0.1"} 3`,
		`lat_bucket{le="+Inf"} 5`,
		"lat_count 5",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("export missing %q in:\n%s", want, out)
		}
	}
}

func TestRederivingReturnsSameInstrument(t *testing.T) {
	reg := NewRegistry()
	a := reg.Counter("c", "help", RankLabel(0))
	b := reg.Counter("c", "help", RankLabel(0))
	if a != b {
		t.Fatal("same name+labels should return the same counter")
	}
	other := reg.Counter("c", "help", RankLabel(1))
	if a == other {
		t.Fatal("different labels must be distinct instruments")
	}
	a.Add(2)
	other.Add(3)
	var buf bytes.Buffer
	reg.WritePrometheus(&buf)
	out := buf.String()
	if !strings.Contains(out, `c{rank="0"} 2`) || !strings.Contains(out, `c{rank="1"} 3`) {
		t.Fatalf("per-rank export wrong:\n%s", out)
	}
	if n := strings.Count(out, "# TYPE c counter"); n != 1 {
		t.Fatalf("TYPE line emitted %d times", n)
	}
}

func TestTypeMismatchDisablesQuietly(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("m", "as counter")
	if g := reg.Gauge("m", "as gauge"); g != nil {
		t.Fatal("conflicting type should return nil instrument")
	}
}

func TestNilSafety(t *testing.T) {
	var reg *Registry
	c := reg.Counter("x", "")
	g := reg.Gauge("x", "")
	h := reg.Histogram("x", "", LatencyBuckets)
	c.Add(1)
	c.Inc()
	g.Set(2)
	g.Add(1)
	h.Observe(3)
	h.ObserveSince(time.Now())
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil instruments must read as zero")
	}
	if err := reg.WritePrometheus(io.Discard); err != nil {
		t.Fatal(err)
	}
}

// The disabled path must not allocate: attaching telemetry permanently to
// hot paths is only acceptable if a detached run pays nothing.
func TestNilInstrumentsZeroAlloc(t *testing.T) {
	var reg *Registry
	c := reg.Counter("x", "")
	g := reg.Gauge("x", "")
	h := reg.Histogram("x", "", LatencyBuckets)
	if n := testing.AllocsPerRun(100, func() {
		c.Add(1)
		g.Add(1)
		h.Observe(1)
	}); n != 0 {
		t.Fatalf("nil instruments allocated %.1f times per op", n)
	}
}

func TestConcurrentObservations(t *testing.T) {
	reg := NewRegistry()
	var wg sync.WaitGroup
	for r := 0; r < 8; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			c := reg.Counter("ops_total", "ops", RankLabel(rank%2))
			h := reg.Histogram("lat", "latency", LatencyBuckets, RankLabel(rank%2))
			for i := 0; i < 1000; i++ {
				c.Inc()
				h.Observe(float64(i) * 1e-6)
			}
		}(r)
	}
	// Concurrent export must not race with registration.
	for i := 0; i < 10; i++ {
		if err := reg.WritePrometheus(io.Discard); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	total := reg.Counter("ops_total", "ops", RankLabel(0)).Value() +
		reg.Counter("ops_total", "ops", RankLabel(1)).Value()
	if total != 8000 {
		t.Fatalf("total ops = %d, want 8000", total)
	}
}

func TestExponentialBuckets(t *testing.T) {
	b := ExponentialBuckets(1, 10, 4)
	want := []float64{1, 10, 100, 1000}
	for i := range want {
		if b[i] != want[i] {
			t.Fatalf("buckets = %v", b)
		}
	}
}

func TestServeMetricsAndPprof(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("hits_total", "hits").Add(42)
	srv, err := Serve("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	resp, err := http.Get(fmt.Sprintf("http://%s/metrics", srv.Addr))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "hits_total 42") {
		t.Fatalf("metrics body:\n%s", body)
	}

	resp, err = http.Get(fmt.Sprintf("http://%s/debug/pprof/", srv.Addr))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof index status %d", resp.StatusCode)
	}
}
