package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"os/signal"
	"sync"
	"sync/atomic"
	"syscall"
	"time"
)

// The flight recorder is a fixed-size lock-free ring of recent structured
// transport events — the "last N frames before the crash" view that
// metrics aggregates away and traces only cover when someone thought to
// attach them beforehand. Producers are hot paths (frame decode, fault
// verdicts, queue saturation), so recording takes a handful of atomic
// stores and never allocates; when no recorder is attached the cost is a
// nil check at the call site. The ring is dumped automatically on peer
// loss and SIGQUIT, and on demand via /debug/flightrec.

// FlightKind classifies one flight-recorder event.
type FlightKind uint8

const (
	FlightSend FlightKind = iota + 1
	FlightRecv
	FlightFrameIn
	FlightChunkStart
	FlightChunkDone
	FlightDup
	FlightRetry
	FlightDrop
	FlightSever
	FlightReconnect
	FlightSaturation
	FlightPeerLost
	FlightCacheHit
	FlightCacheMiss
	FlightExchangeStart
	FlightExchangeEnd
)

var flightKindNames = [...]string{
	FlightSend:          "send",
	FlightRecv:          "recv",
	FlightFrameIn:       "frame-in",
	FlightChunkStart:    "chunk-start",
	FlightChunkDone:     "chunk-done",
	FlightDup:           "dup-drop",
	FlightRetry:         "retry",
	FlightDrop:          "drop",
	FlightSever:         "sever",
	FlightReconnect:     "reconnect",
	FlightSaturation:    "sendq-saturated",
	FlightPeerLost:      "peer-lost",
	FlightCacheHit:      "plan-cache-hit",
	FlightCacheMiss:     "plan-cache-miss",
	FlightExchangeStart: "exchange-start",
	FlightExchangeEnd:   "exchange-end",
}

func (k FlightKind) String() string {
	if int(k) < len(flightKindNames) && flightKindNames[k] != "" {
		return flightKindNames[k]
	}
	return fmt.Sprintf("kind-%d", uint8(k))
}

// FlightEvent is one recorded occurrence. Fields that do not apply to a
// kind are zero; Peer is -1 when no remote rank is involved.
type FlightEvent struct {
	At       int64 // unix nanoseconds; stamped by Record when zero
	Kind     FlightKind
	Rank     int32
	Peer     int32
	Tag      int32
	Round    int32
	Seq      uint64
	Exchange uint64
	Bytes    int64
}

// flightSlot packs one event into eight atomic words so concurrent
// writers and the snapshot reader never race byte-wise (the ring must be
// clean under the race detector). Word 0 is the seqlock stamp: zero while
// a writer owns the slot, else the claim sequence that wrote it.
type flightSlot [8]atomic.Uint64

// FlightRecorder is the ring. All methods are safe for concurrent use and
// valid on a nil receiver (no-ops), so instrumentation sites can record
// unconditionally behind a single pointer check.
type FlightRecorder struct {
	ring   []flightSlot
	mask   uint64
	pos    atomic.Uint64 // last claimed sequence; slot i holds seq i+1, i+1+len, ...
	dumped atomic.Bool
}

// NewFlightRecorder returns a recorder keeping the most recent size
// events. Size is rounded up to a power of two, minimum 64.
func NewFlightRecorder(size int) *FlightRecorder {
	n := 64
	for n < size && n < 1<<20 {
		n <<= 1
	}
	return &FlightRecorder{ring: make([]flightSlot, n), mask: uint64(n - 1)}
}

// Cap returns the ring capacity (0 for a nil recorder).
func (f *FlightRecorder) Cap() int {
	if f == nil {
		return 0
	}
	return len(f.ring)
}

// Record appends one event, overwriting the oldest when the ring is full.
// Lock-free, allocation-free, and a no-op on a nil recorder.
func (f *FlightRecorder) Record(ev FlightEvent) {
	if f == nil {
		return
	}
	if ev.At == 0 {
		ev.At = time.Now().UnixNano()
	}
	s := f.pos.Add(1)
	slot := &f.ring[(s-1)&f.mask]
	slot[0].Store(0) // mark mid-write; readers skip until restamped
	slot[1].Store(uint64(ev.At))
	slot[2].Store(uint64(ev.Kind)<<32 | uint64(uint32(ev.Round)))
	slot[3].Store(uint64(uint32(ev.Rank))<<32 | uint64(uint32(ev.Peer)))
	slot[4].Store(uint64(uint32(ev.Tag)) << 32)
	slot[5].Store(ev.Seq)
	slot[6].Store(ev.Exchange)
	slot[7].Store(uint64(ev.Bytes))
	slot[0].Store(s)
}

// Snapshot returns the ring's current contents oldest-first. Slots that
// are mid-overwrite while the snapshot runs are skipped, so a snapshot
// taken under heavy write load returns slightly fewer than Cap events.
func (f *FlightRecorder) Snapshot() []FlightEvent {
	if f == nil {
		return nil
	}
	end := f.pos.Load()
	if end == 0 {
		return nil
	}
	start := uint64(1)
	if size := uint64(len(f.ring)); end > size {
		start = end - size + 1
	}
	out := make([]FlightEvent, 0, end-start+1)
	for s := start; s <= end; s++ {
		slot := &f.ring[(s-1)&f.mask]
		if slot[0].Load() != s {
			continue // overwritten by a newer claim or mid-write
		}
		w1, w2, w3 := slot[1].Load(), slot[2].Load(), slot[3].Load()
		w4, w5, w6, w7 := slot[4].Load(), slot[5].Load(), slot[6].Load(), slot[7].Load()
		if slot[0].Load() != s {
			continue // writer moved in while we read; discard the torn view
		}
		out = append(out, FlightEvent{
			At:       int64(w1),
			Kind:     FlightKind(w2 >> 32),
			Round:    int32(uint32(w2)),
			Rank:     int32(uint32(w3 >> 32)),
			Peer:     int32(uint32(w3)),
			Tag:      int32(uint32(w4 >> 32)),
			Seq:      w5,
			Exchange: w6,
			Bytes:    int64(w7),
		})
	}
	return out
}

// Dump renders the ring oldest-first as one text line per event.
func (f *FlightRecorder) Dump(w io.Writer) {
	events := f.Snapshot()
	if len(events) == 0 {
		fmt.Fprintln(w, "flightrec: no events recorded")
		return
	}
	fmt.Fprintf(w, "flightrec: last %d events (ring cap %d)\n", len(events), f.Cap())
	for _, ev := range events {
		line := fmt.Sprintf("  %s rank=%d %-15s", time.Unix(0, ev.At).UTC().Format("15:04:05.000000"), ev.Rank, ev.Kind)
		if ev.Peer >= 0 {
			line += fmt.Sprintf(" peer=%d", ev.Peer)
		}
		if ev.Tag != 0 {
			line += fmt.Sprintf(" tag=%d", ev.Tag)
		}
		if ev.Exchange != 0 {
			line += fmt.Sprintf(" exch=%016x round=%d", ev.Exchange, ev.Round)
		}
		if ev.Seq != 0 {
			line += fmt.Sprintf(" seq=%d", ev.Seq)
		}
		if ev.Bytes != 0 {
			line += fmt.Sprintf(" bytes=%d", ev.Bytes)
		}
		fmt.Fprintln(w, line)
	}
}

// flightEventJSON is the /debug/flightrec?format=json projection.
type flightEventJSON struct {
	At       string `json:"at"`
	Kind     string `json:"kind"`
	Rank     int32  `json:"rank"`
	Peer     int32  `json:"peer,omitempty"`
	Tag      int32  `json:"tag,omitempty"`
	Round    int32  `json:"round,omitempty"`
	Seq      uint64 `json:"seq,omitempty"`
	Exchange string `json:"exchange,omitempty"`
	Bytes    int64  `json:"bytes,omitempty"`
}

// WriteJSON renders the ring oldest-first as a JSON array.
func (f *FlightRecorder) WriteJSON(w io.Writer) error {
	events := f.Snapshot()
	out := make([]flightEventJSON, 0, len(events))
	for _, ev := range events {
		j := flightEventJSON{
			At:    time.Unix(0, ev.At).UTC().Format(time.RFC3339Nano),
			Kind:  ev.Kind.String(),
			Rank:  ev.Rank,
			Peer:  ev.Peer,
			Tag:   ev.Tag,
			Round: ev.Round,
			Seq:   ev.Seq,
			Bytes: ev.Bytes,
		}
		if ev.Exchange != 0 {
			j.Exchange = fmt.Sprintf("%016x", ev.Exchange)
		}
		out = append(out, j)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

var (
	flightDumpMu  sync.Mutex
	flightDumpOut io.Writer = os.Stderr
)

// SetFlightDumpOutput redirects automatic postmortem dumps (nil discards
// them) and returns the previous writer so tests can capture and restore.
func SetFlightDumpOutput(w io.Writer) io.Writer {
	flightDumpMu.Lock()
	defer flightDumpMu.Unlock()
	prev := flightDumpOut
	flightDumpOut = w
	return prev
}

// DumpOnce emits one postmortem dump of the ring with the given reason to
// the flight-dump writer. Only the first call on a recorder dumps —
// cascading failures (every round of a degraded exchange reporting the
// same lost peer) produce one readable postmortem, not a stack of them.
// Reports whether this call performed the dump.
func (f *FlightRecorder) DumpOnce(reason string) bool {
	if f == nil || !f.dumped.CompareAndSwap(false, true) {
		return false
	}
	flightDumpMu.Lock()
	defer flightDumpMu.Unlock()
	if flightDumpOut == nil {
		return true
	}
	fmt.Fprintf(flightDumpOut, "flightrec: postmortem dump: %s\n", reason)
	f.Dump(flightDumpOut)
	return true
}

// globalFlight backs the process-wide endpoints (/debug/flightrec,
// SIGQUIT): commands register their recorder here once at startup.
var globalFlight atomic.Pointer[FlightRecorder]

// SetGlobalFlightRecorder installs f as the process-wide recorder served
// by /debug/flightrec and dumped on SIGQUIT. Nil uninstalls.
func SetGlobalFlightRecorder(f *FlightRecorder) {
	globalFlight.Store(f)
}

// GlobalFlightRecorder returns the process-wide recorder (nil if unset).
func GlobalFlightRecorder() *FlightRecorder {
	return globalFlight.Load()
}

var flightSignalOnce sync.Once

// DumpFlightOnSignal arranges for SIGQUIT to dump the global flight
// recorder before the runtime's default goroutine dump: the handler
// writes the ring, restores the default disposition, and re-raises the
// signal. Installing twice is a no-op.
func DumpFlightOnSignal() {
	flightSignalOnce.Do(func() {
		ch := make(chan os.Signal, 1)
		signal.Notify(ch, syscall.SIGQUIT)
		go func() {
			for range ch {
				if f := GlobalFlightRecorder(); f != nil {
					flightDumpMu.Lock()
					if flightDumpOut != nil {
						fmt.Fprintln(flightDumpOut, "flightrec: SIGQUIT dump")
						f.Dump(flightDumpOut)
					}
					flightDumpMu.Unlock()
				}
				signal.Reset(syscall.SIGQUIT)
				syscall.Kill(syscall.Getpid(), syscall.SIGQUIT)
			}
		}()
	})
}
