package obs

import (
	"fmt"
	"io"
	"os"
	"sync"
	"time"
)

// Warnings are the observability layer's channel for rare, actionable
// runtime conditions (backpressure engaging, protocol desyncs) that
// should be visible in logs without threading a logger through every hot
// path. Metrics count how often; a warning says it happened at all.

var (
	warnMu  sync.Mutex
	warnOut io.Writer = os.Stderr
)

// SetWarnOutput redirects warnings (nil discards them) and returns the
// previous writer so tests can capture and restore.
func SetWarnOutput(w io.Writer) io.Writer {
	warnMu.Lock()
	defer warnMu.Unlock()
	prev := warnOut
	warnOut = w
	return prev
}

// Warnf emits a single timestamped warning line. Callers on hot paths
// must rate-limit themselves (warn once per condition, count the rest in
// a metric); Warnf itself only serializes concurrent writers.
func Warnf(format string, args ...any) {
	warnMu.Lock()
	defer warnMu.Unlock()
	if warnOut == nil {
		return
	}
	fmt.Fprintf(warnOut, "%s WARN %s\n",
		time.Now().Format("2006-01-02T15:04:05.000Z07:00"), fmt.Sprintf(format, args...))
}
