package obs

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"ddr/internal/trace"
)

func TestWriteTraceRoundTrip(t *testing.T) {
	rec := trace.NewRecorder()
	// Record deliberately out of order across ranks.
	rec.Add(trace.Event{Rank: 1, Name: "round-0", Start: 5 * time.Microsecond, Dur: 10 * time.Microsecond, Bytes: 128})
	rec.Add(trace.Event{Rank: 0, Name: "mapping", Start: 0, Dur: 3 * time.Microsecond})
	rec.Add(trace.Event{Rank: 0, Name: "round-0", Start: 4 * time.Microsecond, Dur: 8 * time.Microsecond, Bytes: 64})

	var buf bytes.Buffer
	if err := WriteTrace(&buf, rec); err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			Pid  int            `json:"pid"`
			Tid  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("trace JSON does not parse: %v\n%s", err, buf.String())
	}
	if parsed.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q", parsed.DisplayTimeUnit)
	}
	spans := 0
	procNames := map[int]bool{}
	threadNames := map[int]bool{}
	lastTsByRank := map[int]float64{}
	for _, e := range parsed.TraceEvents {
		switch e.Ph {
		case "M":
			switch e.Name {
			case "process_name":
				procNames[e.Pid] = true
			case "thread_name":
				threadNames[e.Pid] = true
			default:
				t.Fatalf("unexpected metadata event %q", e.Name)
			}
		case "X":
			spans++
			if e.Ts < 0 || e.Dur < 0 {
				t.Fatalf("negative ts/dur in %+v", e)
			}
			if e.Pid != e.Tid {
				t.Fatalf("span pid %d != tid %d: each rank must be its own process track", e.Pid, e.Tid)
			}
			if e.Ts < lastTsByRank[e.Tid] {
				t.Fatalf("rank %d events not sorted by ts", e.Tid)
			}
			lastTsByRank[e.Tid] = e.Ts
		default:
			t.Fatalf("unexpected phase %q", e.Ph)
		}
	}
	if spans != 3 {
		t.Fatalf("spans = %d, want 3", spans)
	}
	for _, rank := range []int{0, 1} {
		if !procNames[rank] || !threadNames[rank] {
			t.Fatalf("rank %d missing process_name/thread_name metadata (proc %v thread %v)",
				rank, procNames[rank], threadNames[rank])
		}
	}
	// Bytes attribution must survive the round trip.
	found := false
	for _, e := range parsed.TraceEvents {
		if e.Ph == "X" && e.Tid == 1 && e.Name == "round-0" {
			if b, ok := e.Args["bytes"].(float64); !ok || b != 128 {
				t.Fatalf("bytes arg = %v", e.Args)
			}
			found = true
		}
	}
	if !found {
		t.Fatal("rank 1 round-0 span missing")
	}
}

func TestWriteTraceNilRecorder(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteTrace(&buf, nil); err != nil {
		t.Fatal(err)
	}
	var parsed map[string]any
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("empty trace must still be valid JSON: %v", err)
	}
}
