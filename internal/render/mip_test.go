package render

import (
	"fmt"
	"image"
	"sync"
	"testing"

	"ddr/internal/grid"
	"ddr/internal/mpi"
)

func TestRenderBrickMIP(t *testing.T) {
	// 1x1x3 column: the middle sample is largest.
	b := Brick{Box: grid.Box3(0, 0, 0, 1, 1, 3), Values: []float32{0.1, 0.9, 0.4}}
	p, err := RenderBrickMIP(b)
	if err != nil {
		t.Fatal(err)
	}
	if p.Max[0] != 0.9 {
		t.Errorf("max %f", p.Max[0])
	}
	if _, err := RenderBrickMIP(Brick{Box: grid.Box3(0, 0, 0, 2, 2, 2), Values: make([]float32, 3)}); err == nil {
		t.Error("short brick accepted")
	}
}

// TestMIPParallelMatchesSerial: MIP is order-independent, so any brick
// decomposition must produce the exact serial image.
func TestMIPParallelMatchesSerial(t *testing.T) {
	const vw, vh, vd = 14, 10, 12
	full := syntheticBrick(grid.Box3(0, 0, 0, vw, vh, vd), vw, vh, vd)
	pFull, err := RenderBrickMIP(full)
	if err != nil {
		t.Fatal(err)
	}
	serial, err := MIPComposite([]*MIPPartial{pFull}, vw, vh, 0, 1)
	if err != nil {
		t.Fatal(err)
	}

	x, y, z := grid.Factor3(8)
	boxes := grid.Bricks3D(grid.Box3(0, 0, 0, vw, vh, vd), x, y, z)
	var partials []*MIPPartial
	for _, b := range boxes {
		p, err := RenderBrickMIP(syntheticBrick(b, vw, vh, vd))
		if err != nil {
			t.Fatal(err)
		}
		partials = append(partials, p)
	}
	split, err := MIPComposite(partials, vw, vh, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range serial.Pix {
		if serial.Pix[i] != split.Pix[i] {
			t.Fatalf("pixel byte %d: %d vs %d (MIP must be exact)", i, serial.Pix[i], split.Pix[i])
		}
	}
}

func TestMIPCompositeValidation(t *testing.T) {
	if _, err := MIPComposite(nil, 4, 4, 1, 1); err == nil {
		t.Error("empty range accepted")
	}
	bad := &MIPPartial{X0: 3, Y0: 0, W: 2, H: 1, Max: []float32{1, 2}}
	if _, err := MIPComposite([]*MIPPartial{bad}, 4, 4, 0, 1); err == nil {
		t.Error("out-of-frame partial accepted")
	}
	// Uncovered pixels render as the low end, not -inf garbage.
	p := &MIPPartial{X0: 0, Y0: 0, W: 1, H: 1, Max: []float32{1}}
	img, err := MIPComposite([]*MIPPartial{p}, 2, 1, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if img.RGBAAt(1, 0).R != 0 {
		t.Errorf("uncovered pixel %v", img.RGBAAt(1, 0))
	}
	if img.RGBAAt(0, 0).R != 255 {
		t.Errorf("covered pixel %v", img.RGBAAt(0, 0))
	}
}

func TestGatherMIP(t *testing.T) {
	const vw, vh, vd = 12, 12, 12
	x, y, z := grid.Factor3(8)
	boxes := grid.Bricks3D(grid.Box3(0, 0, 0, vw, vh, vd), x, y, z)
	var (
		mu    sync.Mutex
		frame *image.RGBA
	)
	err := mpi.Launch(8, func(c *mpi.Comm) error {
		p, err := RenderBrickMIP(syntheticBrick(boxes[c.Rank()], vw, vh, vd))
		if err != nil {
			return err
		}
		img, err := GatherMIP(c, 0, p, vw, vh, 0, 1)
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			if img == nil {
				return fmt.Errorf("root missing frame")
			}
			mu.Lock()
			frame = img
			mu.Unlock()
		} else if img != nil {
			return fmt.Errorf("non-root got frame")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Compare against serial.
	full, err := RenderBrickMIP(syntheticBrick(grid.Box3(0, 0, 0, vw, vh, vd), vw, vh, vd))
	if err != nil {
		t.Fatal(err)
	}
	serial, err := MIPComposite([]*MIPPartial{full}, vw, vh, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range serial.Pix {
		if serial.Pix[i] != frame.Pix[i] {
			t.Fatalf("pixel byte %d differs", i)
		}
	}
}
