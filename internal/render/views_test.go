package render

import (
	"math"
	"testing"

	"ddr/internal/grid"
)

func TestViewAxisFrameDims(t *testing.T) {
	cases := []struct {
		v    ViewAxis
		w, h int
	}{
		{ViewZPlus, 10, 20}, {ViewZMinus, 10, 20},
		{ViewXPlus, 20, 30}, {ViewXMinus, 20, 30},
		{ViewYPlus, 10, 30}, {ViewYMinus, 10, 30},
	}
	for _, c := range cases {
		w, h := c.v.FrameDims(10, 20, 30)
		if w != c.w || h != c.h {
			t.Errorf("%v: %dx%d, want %dx%d", c.v, w, h, c.w, c.h)
		}
	}
	if ViewXMinus.String() != "-x" || ViewZPlus.String() != "+z" {
		t.Error("view names")
	}
}

func TestRenderBrickAxisZPlusMatchesRenderBrick(t *testing.T) {
	b := syntheticBrick(grid.Box3(0, 0, 0, 9, 7, 5), 9, 7, 5)
	a, err := RenderBrick(b, CTTransfer)
	if err != nil {
		t.Fatal(err)
	}
	z, err := RenderBrickAxis(b, CTTransfer, ViewZPlus)
	if err != nil {
		t.Fatal(err)
	}
	if a.X0 != z.X0 || a.Y0 != z.Y0 || a.W != z.W || a.H != z.H || a.Z0 != z.Z0 {
		t.Fatalf("geometry differs: %+v vs %+v", a, z)
	}
	for i := range a.RGBA {
		if a.RGBA[i] != z.RGBA[i] {
			t.Fatalf("pixel component %d differs", i)
		}
	}
}

// opaqueAt builds a 2x1x1-style brick with distinct opaque colors at the
// two ends of the given axis, for occlusion checks.
func twoCellBrick(axis int) Brick {
	dims := [3]int{1, 1, 1}
	dims[axis] = 2
	box := grid.Box3(0, 0, 0, dims[0], dims[1], dims[2])
	// Values 0.5 (white) at low coordinate, 1.0 (red) at high coordinate.
	return Brick{Box: box, Values: []float32{0.5, 1.0}}
}

func redWhiteTF(v float64) (float64, float64, float64, float64) {
	if v > 0.75 {
		return 1, 0, 0, 1
	}
	return 1, 1, 1, 1
}

func TestRenderBrickAxisOcclusion(t *testing.T) {
	cases := []struct {
		view      ViewAxis
		axis      int
		wantWhite bool // low-coordinate cell (white) should win on Plus views
	}{
		{ViewXPlus, 0, true}, {ViewXMinus, 0, false},
		{ViewYPlus, 1, true}, {ViewYMinus, 1, false},
		{ViewZPlus, 2, true}, {ViewZMinus, 2, false},
	}
	for _, c := range cases {
		p, err := RenderBrickAxis(twoCellBrick(c.axis), redWhiteTF, c.view)
		if err != nil {
			t.Fatalf("%v: %v", c.view, err)
		}
		r, g, _, _ := p.At(0, 0)
		isWhite := r == 1 && g == 1
		if isWhite != c.wantWhite {
			t.Errorf("%v: white=%v, want %v", c.view, isWhite, c.wantWhite)
		}
	}
}

// TestAxisCompositeAcrossBricks verifies that two bricks split along the
// viewing axis composite to the same image as the fused brick, for every
// view, including the negative ones whose depth keys are negated.
func TestAxisCompositeAcrossBricks(t *testing.T) {
	const vw, vh, vd = 8, 8, 8
	full := syntheticBrick(grid.Box3(0, 0, 0, vw, vh, vd), vw, vh, vd)
	for _, view := range []ViewAxis{ViewXPlus, ViewXMinus, ViewYPlus, ViewYMinus, ViewZPlus, ViewZMinus} {
		axis, _ := view.axis()
		dimsA := [3]int{vw, vh, vd}
		dimsA[axis] = 4
		offB := [3]int{0, 0, 0}
		offB[axis] = 4
		dimsB := [3]int{vw, vh, vd}
		dimsB[axis] -= 4
		brickA := syntheticBrick(grid.Box3(0, 0, 0, dimsA[0], dimsA[1], dimsA[2]), vw, vh, vd)
		brickB := syntheticBrick(grid.Box3(offB[0], offB[1], offB[2], dimsB[0], dimsB[1], dimsB[2]), vw, vh, vd)

		pFull, err := RenderBrickAxis(full, CTTransfer, view)
		if err != nil {
			t.Fatal(err)
		}
		pA, err := RenderBrickAxis(brickA, CTTransfer, view)
		if err != nil {
			t.Fatal(err)
		}
		pB, err := RenderBrickAxis(brickB, CTTransfer, view)
		if err != nil {
			t.Fatal(err)
		}
		fw, fh := view.FrameDims(vw, vh, vd)
		imgSplit, err := Composite([]*Partial{pA, pB}, fw, fh)
		if err != nil {
			t.Fatal(err)
		}
		imgFull, err := Composite([]*Partial{pFull}, fw, fh)
		if err != nil {
			t.Fatal(err)
		}
		for i := range imgFull.Pix {
			d := int(imgFull.Pix[i]) - int(imgSplit.Pix[i])
			if d < -3 || d > 3 {
				t.Fatalf("%v: pixel byte %d differs: %d vs %d", view, i, imgFull.Pix[i], imgSplit.Pix[i])
			}
		}
	}
}

func TestRenderBrickAxisValidation(t *testing.T) {
	if _, err := RenderBrickAxis(Brick{Box: grid.Box3(0, 0, 0, 2, 2, 2), Values: make([]float32, 3)}, CTTransfer, ViewXPlus); err == nil {
		t.Error("short brick accepted")
	}
}

// mathSanity keeps the math import honest in case the occlusion helpers
// change; it also documents the opacity convention.
func TestTransferOpacityCap(t *testing.T) {
	_, _, _, a := CTTransfer(math.Inf(1))
	if a < 0 || a > 1 {
		t.Errorf("opacity %f out of range", a)
	}
}
