package render

import "fmt"

// ViewAxis selects the orthographic viewing direction for RenderBrickAxis.
// "Plus" views look along the positive axis (the plane nearest the origin
// is in front); "Minus" views look along the negative axis.
type ViewAxis int

// Supported viewing directions.
const (
	ViewZPlus ViewAxis = iota
	ViewZMinus
	ViewXPlus
	ViewXMinus
	ViewYPlus
	ViewYMinus
)

func (v ViewAxis) String() string {
	switch v {
	case ViewZPlus:
		return "+z"
	case ViewZMinus:
		return "-z"
	case ViewXPlus:
		return "+x"
	case ViewXMinus:
		return "-x"
	case ViewYPlus:
		return "+y"
	case ViewYMinus:
		return "-y"
	}
	return fmt.Sprintf("ViewAxis(%d)", int(v))
}

// axis returns the marching axis index (0=x,1=y,2=z) and whether the view
// is along the negative direction.
func (v ViewAxis) axis() (int, bool) {
	switch v {
	case ViewXPlus:
		return 0, false
	case ViewXMinus:
		return 0, true
	case ViewYPlus:
		return 1, false
	case ViewYMinus:
		return 1, true
	case ViewZMinus:
		return 2, true
	default:
		return 2, false
	}
}

// FrameDims returns the full-frame width and height for rendering the
// given volume extents under this view.
func (v ViewAxis) FrameDims(vw, vh, vd int) (w, h int) {
	switch a, _ := v.axis(); a {
	case 0:
		return vh, vd
	case 1:
		return vw, vd
	default:
		return vw, vh
	}
}

// RenderBrickAxis ray-casts the brick orthographically along the given
// view axis with front-to-back compositing. The partial's footprint lies
// in the view's image plane: +x/-x views map (y,z) to (screen-x,
// screen-y), +y/-y views map (x,z), and +z/-z views map (x,y).
// RenderBrick is RenderBrickAxis with ViewZPlus.
func RenderBrickAxis(b Brick, tf TransferFunc, view ViewAxis) (*Partial, error) {
	if err := b.Validate(); err != nil {
		return nil, err
	}
	march, negative := view.axis()
	// u and v are the image-plane axes in volume coordinates.
	var uAxis, vAxis int
	switch march {
	case 0:
		uAxis, vAxis = 1, 2
	case 1:
		uAxis, vAxis = 0, 2
	default:
		uAxis, vAxis = 0, 1
	}
	w, h := b.Box.Dims[uAxis], b.Box.Dims[vAxis]
	d := b.Box.Dims[march]
	z0 := b.Box.Offset[march]
	if negative {
		// Depth keys must order front-first: for a negative view the far
		// end of the axis is in front, so negate the key.
		z0 = -(b.Box.Offset[march] + d)
	}
	p := &Partial{
		X0: b.Box.Offset[uAxis], Y0: b.Box.Offset[vAxis],
		W: w, H: h, Z0: z0,
		RGBA: make([]float64, 4*w*h),
	}
	bw, bh := b.Box.Dims[0], b.Box.Dims[1]
	sample := func(coord [3]int) float64 {
		return float64(b.Values[((coord[2]*bh)+coord[1])*bw+coord[0]])
	}
	for v := 0; v < h; v++ {
		for u := 0; u < w; u++ {
			var cr, cg, cb, ca float64
			for s := 0; s < d && ca < 0.995; s++ {
				var coord [3]int
				coord[uAxis] = u
				coord[vAxis] = v
				if negative {
					coord[march] = d - 1 - s
				} else {
					coord[march] = s
				}
				r, g, bl, a := tf(sample(coord))
				t := (1 - ca) * a
				cr += t * r
				cg += t * g
				cb += t * bl
				ca += t
			}
			i := 4 * (v*w + u)
			p.RGBA[i], p.RGBA[i+1], p.RGBA[i+2], p.RGBA[i+3] = cr, cg, cb, ca
		}
	}
	return p, nil
}
