package render

import (
	"encoding/binary"
	"fmt"
	"math"
	"testing"

	"ddr/internal/grid"
	"ddr/internal/mpi"
	"ddr/internal/tiff"
)

// syntheticBrick fills a brick with the tiff synthetic density sampled at
// its global coordinates within a vw×vh×vd volume.
func syntheticBrick(box grid.Box, vw, vh, vd int) Brick {
	vals := make([]float32, box.Volume())
	i := 0
	for z := 0; z < box.Dims[2]; z++ {
		for y := 0; y < box.Dims[1]; y++ {
			for x := 0; x < box.Dims[0]; x++ {
				gx, gy, gz := box.Offset[0]+x, box.Offset[1]+y, box.Offset[2]+z
				vals[i] = float32(tiff.SyntheticDensity(
					float64(gx)/float64(vw-1),
					float64(gy)/float64(vh-1),
					float64(gz)/float64(vd-1)))
				i++
			}
		}
	}
	return Brick{Box: box, Values: vals}
}

func TestNormalizeSamples(t *testing.T) {
	got, err := NormalizeSamples([]byte{0, 128, 255}, 8, tiff.FormatUint)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 0 || got[2] != 1 || math.Abs(float64(got[1])-128.0/255) > 1e-6 {
		t.Errorf("8-bit: %v", got)
	}
	buf16 := make([]byte, 4)
	binary.LittleEndian.PutUint16(buf16, 0)
	binary.LittleEndian.PutUint16(buf16[2:], 65535)
	got, err = NormalizeSamples(buf16, 16, tiff.FormatUint)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 0 || got[1] != 1 {
		t.Errorf("16-bit: %v", got)
	}
	buf32 := make([]byte, 8)
	binary.LittleEndian.PutUint32(buf32, math.MaxUint32)
	got, err = NormalizeSamples(buf32, 32, tiff.FormatUint)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 1 || got[1] != 0 {
		t.Errorf("32-bit: %v", got)
	}
	bufF := make([]byte, 8)
	binary.LittleEndian.PutUint32(bufF, math.Float32bits(0.5))
	binary.LittleEndian.PutUint32(bufF[4:], math.Float32bits(2.5)) // clamped
	got, err = NormalizeSamples(bufF, 32, tiff.FormatFloat)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 0.5 || got[1] != 1 {
		t.Errorf("float: %v", got)
	}
	if _, err := NormalizeSamples(make([]byte, 3), 16, tiff.FormatUint); err == nil {
		t.Error("odd byte count accepted")
	}
	if _, err := NormalizeSamples(nil, 12, tiff.FormatUint); err == nil {
		t.Error("12-bit accepted")
	}
}

func TestCTTransferShape(t *testing.T) {
	_, _, _, aAir := CTTransfer(0.05)
	if aAir != 0 {
		t.Errorf("air opacity %f", aAir)
	}
	_, _, _, aDentin := CTTransfer(0.5)
	_, _, _, aEnamel := CTTransfer(0.9)
	if !(aEnamel > aDentin && aDentin > aAir) {
		t.Errorf("opacity not increasing: %f %f %f", aAir, aDentin, aEnamel)
	}
	r, g, b, a := CTTransfer(1.0)
	for _, v := range []float64{r, g, b, a} {
		if v < 0 || v > 1 {
			t.Errorf("transfer out of range: %f %f %f %f", r, g, b, a)
		}
	}
}

func TestRenderBrickValidation(t *testing.T) {
	if _, err := RenderBrick(Brick{Box: grid.Box2(0, 0, 2, 2)}, CTTransfer); err == nil {
		t.Error("2D brick accepted")
	}
	if _, err := RenderBrick(Brick{Box: grid.Box3(0, 0, 0, 2, 2, 2), Values: make([]float32, 7)}, CTTransfer); err == nil {
		t.Error("short samples accepted")
	}
}

func TestRenderOpaqueFrontHidesBack(t *testing.T) {
	// Two-sample ray: an opaque white front must hide an opaque red back.
	tf := func(v float64) (float64, float64, float64, float64) {
		if v > 0.75 {
			return 1, 0, 0, 1 // red
		}
		if v > 0.25 {
			return 1, 1, 1, 1 // white
		}
		return 0, 0, 0, 0
	}
	b := Brick{Box: grid.Box3(0, 0, 0, 1, 1, 2), Values: []float32{0.5, 1.0}}
	p, err := RenderBrick(b, tf)
	if err != nil {
		t.Fatal(err)
	}
	r, g, _, a := p.At(0, 0)
	if r != 1 || g != 1 || a != 1 {
		t.Errorf("front not dominant: r=%f g=%f a=%f", r, g, a)
	}
}

func TestCompositeAssociativity(t *testing.T) {
	// Rendering a full column must match rendering it as two sub-bricks
	// composited front-to-back.
	const vw, vh, vd = 8, 6, 10
	full := syntheticBrick(grid.Box3(0, 0, 0, vw, vh, vd), vw, vh, vd)
	pFull, err := RenderBrick(full, CTTransfer)
	if err != nil {
		t.Fatal(err)
	}
	front := syntheticBrick(grid.Box3(0, 0, 0, vw, vh, 4), vw, vh, vd)
	back := syntheticBrick(grid.Box3(0, 0, 4, vw, vh, vd-4), vw, vh, vd)
	pf, err := RenderBrick(front, CTTransfer)
	if err != nil {
		t.Fatal(err)
	}
	pb, err := RenderBrick(back, CTTransfer)
	if err != nil {
		t.Fatal(err)
	}
	if err := compositeInto(pf, pb); err != nil {
		t.Fatal(err)
	}
	for i := range pFull.RGBA {
		// Early-ray termination makes split rendering integrate slightly
		// deeper than the fused ray; allow a small tolerance.
		if math.Abs(pFull.RGBA[i]-pf.RGBA[i]) > 1e-2 {
			t.Fatalf("component %d: full %f vs composited %f", i, pFull.RGBA[i], pf.RGBA[i])
		}
	}
}

func TestCompositeFootprintMismatch(t *testing.T) {
	a := &Partial{X0: 0, Y0: 0, W: 2, H: 2, RGBA: make([]float64, 16)}
	b := &Partial{X0: 2, Y0: 0, W: 2, H: 2, RGBA: make([]float64, 16)}
	if err := compositeInto(a, b); err == nil {
		t.Error("footprint mismatch accepted")
	}
}

func TestCompositeFullFrame(t *testing.T) {
	const vw, vh, vd = 12, 12, 12
	x, y, z := grid.Factor3(8)
	boxes := grid.Bricks3D(grid.Box3(0, 0, 0, vw, vh, vd), x, y, z)
	var partials []*Partial
	for _, b := range boxes {
		p, err := RenderBrick(syntheticBrick(b, vw, vh, vd), CTTransfer)
		if err != nil {
			t.Fatal(err)
		}
		partials = append(partials, p)
	}
	img, err := Composite(partials, vw, vh)
	if err != nil {
		t.Fatal(err)
	}
	if img.Bounds().Dx() != vw || img.Bounds().Dy() != vh {
		t.Fatalf("bounds %v", img.Bounds())
	}
	// Compare against a single-brick serial rendering.
	serialPartial, err := RenderBrick(syntheticBrick(grid.Box3(0, 0, 0, vw, vh, vd), vw, vh, vd), CTTransfer)
	if err != nil {
		t.Fatal(err)
	}
	serial, err := Composite([]*Partial{serialPartial}, vw, vh)
	if err != nil {
		t.Fatal(err)
	}
	for i := range img.Pix {
		d := int(img.Pix[i]) - int(serial.Pix[i])
		if d < -3 || d > 3 {
			t.Fatalf("pixel byte %d differs: %d vs %d", i, img.Pix[i], serial.Pix[i])
		}
	}
}

func TestPartialEncodeDecode(t *testing.T) {
	p := &Partial{X0: 3, Y0: 4, W: 2, H: 1, Z0: 7, RGBA: []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8}}
	got, err := decodePartial(encodePartial(p))
	if err != nil {
		t.Fatal(err)
	}
	if got.X0 != 3 || got.Y0 != 4 || got.W != 2 || got.H != 1 || got.Z0 != 7 {
		t.Fatalf("header: %+v", got)
	}
	for i := range p.RGBA {
		if got.RGBA[i] != p.RGBA[i] {
			t.Fatalf("RGBA[%d] = %f", i, got.RGBA[i])
		}
	}
	if _, err := decodePartial([]byte{1, 2}); err == nil {
		t.Error("truncated partial accepted")
	}
	if _, err := decodePartial(encodePartial(p)[:25]); err == nil {
		t.Error("short body accepted")
	}
}

func TestGatherComposite(t *testing.T) {
	const vw, vh, vd = 12, 12, 12
	x, y, z := grid.Factor3(8)
	boxes := grid.Bricks3D(grid.Box3(0, 0, 0, vw, vh, vd), x, y, z)
	err := mpi.Launch(8, func(c *mpi.Comm) error {
		p, err := RenderBrick(syntheticBrick(boxes[c.Rank()], vw, vh, vd), CTTransfer)
		if err != nil {
			return err
		}
		img, err := GatherComposite(c, 0, p, vw, vh)
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			if img == nil || img.Bounds().Dx() != vw {
				return fmt.Errorf("root image missing or wrong size")
			}
		} else if img != nil {
			return fmt.Errorf("non-root got an image")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func BenchmarkRenderBrick(b *testing.B) {
	brick := syntheticBrick(grid.Box3(0, 0, 0, 64, 64, 64), 64, 64, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RenderBrick(brick, CTTransfer); err != nil {
			b.Fatal(err)
		}
	}
}
