package render

import (
	"fmt"
	"image"
	"sync"
	"testing"

	"ddr/internal/grid"
	"ddr/internal/mpi"
)

// TestBinarySwapMatchesGatherComposite is the correctness anchor: for a
// synthetic volume bricked over 8 ranks, binary-swap must produce the
// same frame (within rounding) as the serial gather-composite path.
func TestBinarySwapMatchesGatherComposite(t *testing.T) {
	const vw, vh, vd = 16, 16, 16
	x, y, z := grid.Factor3(8)
	boxes := grid.Bricks3D(grid.Box3(0, 0, 0, vw, vh, vd), x, y, z)

	var (
		mu            sync.Mutex
		gather, bswap *image.RGBA
	)
	err := mpi.Launch(8, func(c *mpi.Comm) error {
		p, err := RenderBrick(syntheticBrick(boxes[c.Rank()], vw, vh, vd), CTTransfer)
		if err != nil {
			return err
		}
		g, err := GatherComposite(c, 0, p, vw, vh)
		if err != nil {
			return err
		}
		bs, err := BinarySwapComposite(c, 0, p, vw, vh)
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			mu.Lock()
			gather, bswap = g, bs
			mu.Unlock()
		} else if bs != nil {
			return fmt.Errorf("non-root rank %d received a frame", c.Rank())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if gather == nil || bswap == nil {
		t.Fatal("missing frames")
	}
	for i := range gather.Pix {
		d := int(gather.Pix[i]) - int(bswap.Pix[i])
		if d < -2 || d > 2 {
			t.Fatalf("pixel byte %d: gather %d vs binary-swap %d", i, gather.Pix[i], bswap.Pix[i])
		}
	}
}

func TestBinarySwapDepthOrdering(t *testing.T) {
	// Two ranks along z: the front brick is opaque white, the back opaque
	// red. Binary-swap must keep white regardless of rank order.
	tf := func(v float64) (float64, float64, float64, float64) {
		if v > 0.75 {
			return 1, 0, 0, 1
		}
		return 1, 1, 1, 1
	}
	var (
		mu    sync.Mutex
		frame *image.RGBA
	)
	err := mpi.Launch(2, func(c *mpi.Comm) error {
		// Rank 0 gets the BACK brick (z=1), rank 1 the front (z=0): rank
		// order deliberately disagrees with depth order.
		box := grid.Box3(0, 0, 1, 2, 2, 1)
		val := float32(1.0) // red
		if c.Rank() == 1 {
			box = grid.Box3(0, 0, 0, 2, 2, 1)
			val = 0.5 // white
		}
		vals := []float32{val, val, val, val}
		p, err := RenderBrick(Brick{Box: box, Values: vals}, tf)
		if err != nil {
			return err
		}
		img, err := BinarySwapComposite(c, 0, p, 2, 2)
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			mu.Lock()
			frame = img
			mu.Unlock()
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	c := frame.RGBAAt(0, 0)
	if c.R != 255 || c.G != 255 || c.B != 255 {
		t.Errorf("front brick not dominant: %v", c)
	}
}

func TestBinarySwapRejectsNonPowerOfTwo(t *testing.T) {
	err := mpi.Launch(3, func(c *mpi.Comm) error {
		p := &Partial{W: 1, H: 1, RGBA: make([]float64, 4)}
		if _, err := BinarySwapComposite(c, 0, p, 1, 1); err == nil {
			return fmt.Errorf("3 ranks accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBinarySwapRejectsOutOfFramePartial(t *testing.T) {
	err := mpi.Launch(1, func(c *mpi.Comm) error {
		p := &Partial{X0: 5, Y0: 0, W: 2, H: 1, RGBA: make([]float64, 8)}
		if _, err := BinarySwapComposite(c, 0, p, 4, 4); err == nil {
			return fmt.Errorf("out-of-frame partial accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSwapEncoding(t *testing.T) {
	key, pix, err := decodeSwap(encodeSwap(42, []float64{1, 2, 3, 4}))
	if err != nil || key != 42 || len(pix) != 4 || pix[2] != 3 {
		t.Fatalf("roundtrip: key=%d pix=%v err=%v", key, pix, err)
	}
	if _, _, err := decodeSwap([]byte{1, 2, 3}); err == nil {
		t.Error("short payload accepted")
	}
	if _, _, err := decodeSwap(make([]byte, 13)); err == nil {
		t.Error("misaligned payload accepted")
	}
}

func BenchmarkBinarySwapVsGather(b *testing.B) {
	const vw, vh, vd = 32, 32, 32
	x, y, z := grid.Factor3(8)
	boxes := grid.Bricks3D(grid.Box3(0, 0, 0, vw, vh, vd), x, y, z)
	for _, algo := range []struct {
		name string
		run  func(c *mpi.Comm, p *Partial) error
	}{
		{"gather", func(c *mpi.Comm, p *Partial) error {
			_, err := GatherComposite(c, 0, p, vw, vh)
			return err
		}},
		{"binary-swap", func(c *mpi.Comm, p *Partial) error {
			_, err := BinarySwapComposite(c, 0, p, vw, vh)
			return err
		}},
	} {
		b.Run(algo.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				err := mpi.Launch(8, func(c *mpi.Comm) error {
					p, err := RenderBrick(syntheticBrick(boxes[c.Rank()], vw, vh, vd), CTTransfer)
					if err != nil {
						return err
					}
					return algo.run(c, p)
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
