// Package render implements a software direct-volume renderer (DVR) over
// the brick decomposition DDR produces in the paper's medical-imaging use
// case: orthographic ray casting along +z with front-to-back compositing,
// a transfer function, and sort-last parallel compositing of per-brick
// partial images. It stands in for the GPU renderers (vl3, ParaView) the
// paper feeds — the point here is to consume and verify the redistributed
// bricks, not to race a GPU.
package render

import (
	"encoding/binary"
	"fmt"
	"image"
	"image/color"
	"math"

	"ddr/internal/grid"
	"ddr/internal/tiff"
)

// Brick is a box-shaped sub-volume with normalized samples in [0,1],
// x-fastest, matching the layout DDR delivers.
type Brick struct {
	Box    grid.Box
	Values []float32
}

// Validate checks the sample count matches the box.
func (b Brick) Validate() error {
	if b.Box.NDims != 3 {
		return fmt.Errorf("render: brick box %v is not 3D", b.Box)
	}
	if len(b.Values) != b.Box.Volume() {
		return fmt.Errorf("render: brick has %d samples for box %v (%d)", len(b.Values), b.Box, b.Box.Volume())
	}
	return nil
}

// NormalizeSamples converts raw TIFF-format samples to normalized
// float32s in [0,1]. Unsigned integers are scaled by their type range;
// floats are clamped.
func NormalizeSamples(raw []byte, bitsPerSample int, format tiff.SampleFormat) ([]float32, error) {
	bps := bitsPerSample / 8
	switch bitsPerSample {
	case 8, 16, 32:
	default:
		return nil, fmt.Errorf("render: unsupported bits per sample %d", bitsPerSample)
	}
	if len(raw)%bps != 0 {
		return nil, fmt.Errorf("render: %d raw bytes not a multiple of sample size %d", len(raw), bps)
	}
	out := make([]float32, len(raw)/bps)
	for i := range out {
		switch {
		case format == tiff.FormatFloat:
			v := math.Float32frombits(binary.LittleEndian.Uint32(raw[i*4:]))
			out[i] = float32(math.Max(0, math.Min(1, float64(v))))
		case bitsPerSample == 8:
			out[i] = float32(raw[i]) / 255
		case bitsPerSample == 16:
			out[i] = float32(binary.LittleEndian.Uint16(raw[i*2:])) / 65535
		default:
			out[i] = float32(float64(binary.LittleEndian.Uint32(raw[i*4:])) / float64(math.MaxUint32))
		}
	}
	return out, nil
}

// TransferFunc maps a normalized density to premultipliable color and
// opacity, all in [0,1].
type TransferFunc func(v float64) (r, g, b, a float64)

// CTTransfer is a transfer function tuned for the synthetic CT volume:
// air is transparent, soft medium faintly blue, dentin warm, enamel white
// and nearly opaque.
func CTTransfer(v float64) (r, g, b, a float64) {
	switch {
	case v < 0.12:
		return 0, 0, 0, 0
	case v < 0.35:
		t := (v - 0.12) / 0.23
		return 0.3 * t, 0.4 * t, 0.6 * t, 0.02 * t
	case v < 0.7:
		t := (v - 0.35) / 0.35
		return 0.7 + 0.2*t, 0.5 + 0.2*t, 0.3 + 0.1*t, 0.04 + 0.25*t
	default:
		t := math.Min(1, (v-0.7)/0.3)
		return 0.9 + 0.1*t, 0.9 + 0.1*t, 0.85 + 0.15*t, 0.3 + 0.6*t
	}
}

// Partial is a per-brick partial rendering: a premultiplied RGBA image of
// the brick's x-y footprint, accumulated front-to-back, plus the z range
// it covers so partials can be depth-ordered during compositing.
type Partial struct {
	X0, Y0 int // footprint offset in the full image
	W, H   int
	Z0     int       // front depth of the brick (smaller = closer)
	RGBA   []float64 // 4 floats per pixel, premultiplied by alpha
}

// At returns the premultiplied RGBA at footprint pixel (x, y).
func (p *Partial) At(x, y int) (r, g, b, a float64) {
	i := 4 * (y*p.W + x)
	return p.RGBA[i], p.RGBA[i+1], p.RGBA[i+2], p.RGBA[i+3]
}

// RenderBrick ray-casts the brick orthographically along +z (the viewer
// looks at the x-y plane from z = -inf) with unit sampling distance and
// front-to-back compositing.
func RenderBrick(b Brick, tf TransferFunc) (*Partial, error) {
	if err := b.Validate(); err != nil {
		return nil, err
	}
	w, h, d := b.Box.Dims[0], b.Box.Dims[1], b.Box.Dims[2]
	p := &Partial{
		X0: b.Box.Offset[0], Y0: b.Box.Offset[1],
		W: w, H: h, Z0: b.Box.Offset[2],
		RGBA: make([]float64, 4*w*h),
	}
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			var cr, cg, cb, ca float64
			for z := 0; z < d && ca < 0.995; z++ {
				v := float64(b.Values[((z*h)+y)*w+x])
				r, g, bl, a := tf(v)
				t := (1 - ca) * a
				cr += t * r
				cg += t * g
				cb += t * bl
				ca += t
			}
			i := 4 * (y*w + x)
			p.RGBA[i], p.RGBA[i+1], p.RGBA[i+2], p.RGBA[i+3] = cr, cg, cb, ca
		}
	}
	return p, nil
}

// compositeInto merges back (further from the viewer) behind front,
// writing into front. Both must share the same footprint.
func compositeInto(front, back *Partial) error {
	if front.X0 != back.X0 || front.Y0 != back.Y0 || front.W != back.W || front.H != back.H {
		return fmt.Errorf("render: composite footprint mismatch (%d,%d %dx%d vs %d,%d %dx%d)",
			front.X0, front.Y0, front.W, front.H, back.X0, back.Y0, back.W, back.H)
	}
	for i := 0; i < len(front.RGBA); i += 4 {
		t := 1 - front.RGBA[i+3]
		front.RGBA[i] += t * back.RGBA[i]
		front.RGBA[i+1] += t * back.RGBA[i+1]
		front.RGBA[i+2] += t * back.RGBA[i+2]
		front.RGBA[i+3] += t * back.RGBA[i+3]
	}
	return nil
}

// Composite depth-sorts the partials, merges those sharing a footprint
// front-to-back, and assembles the final full-frame image over a black
// background. Partials must tile the image in x-y (each footprint column
// covered by one or more partials at distinct depths).
func Composite(partials []*Partial, width, height int) (*image.RGBA, error) {
	// Group by footprint.
	type key struct{ x0, y0, w, h int }
	groups := map[key][]*Partial{}
	for _, p := range partials {
		k := key{p.X0, p.Y0, p.W, p.H}
		groups[k] = append(groups[k], p)
	}
	img := image.NewRGBA(image.Rect(0, 0, width, height))
	for k, ps := range groups {
		// Insertion sort by Z0 ascending (front first); groups are small.
		for i := 1; i < len(ps); i++ {
			for j := i; j > 0 && ps[j].Z0 < ps[j-1].Z0; j-- {
				ps[j], ps[j-1] = ps[j-1], ps[j]
			}
		}
		acc := &Partial{X0: ps[0].X0, Y0: ps[0].Y0, W: ps[0].W, H: ps[0].H, Z0: ps[0].Z0,
			RGBA: append([]float64(nil), ps[0].RGBA...)}
		for _, p := range ps[1:] {
			if err := compositeInto(acc, p); err != nil {
				return nil, err
			}
		}
		for y := 0; y < k.h; y++ {
			for x := 0; x < k.w; x++ {
				r, g, b, _ := acc.At(x, y)
				img.SetRGBA(k.x0+x, k.y0+y, color.RGBA{
					R: uint8(255*math.Min(1, r) + 0.5),
					G: uint8(255*math.Min(1, g) + 0.5),
					B: uint8(255*math.Min(1, b) + 0.5),
					A: 255,
				})
			}
		}
	}
	return img, nil
}
