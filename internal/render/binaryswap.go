package render

import (
	"fmt"
	"image"
	"image/color"
	"math"
	"math/bits"

	"ddr/internal/fielddata"
	"ddr/internal/mpi"
)

// BinarySwapComposite is the classic sort-last compositing algorithm
// (Ma et al.): in log2(P) rounds, each rank pairs with a partner, swaps
// half of its current image region, and composites the received half, so
// compositing work and traffic are spread over all ranks instead of
// funneling into one gather. It requires a power-of-two communicator.
//
// mine is this rank's brick partial; depth ordering between partials that
// share a footprint follows their Z0 (front = smaller). The assembled
// frame is returned at root, nil elsewhere.
func BinarySwapComposite(c *mpi.Comm, root int, mine *Partial, width, height int) (*image.RGBA, error) {
	p := c.Size()
	if p&(p-1) != 0 {
		return nil, fmt.Errorf("render: binary-swap needs a power-of-two rank count, got %d", p)
	}
	// Expand the brick partial to a full frame (transparent outside the
	// footprint), premultiplied RGBA as float64.
	frame := make([]float64, 4*width*height)
	for y := 0; y < mine.H; y++ {
		fy := mine.Y0 + y
		if fy < 0 || fy >= height {
			return nil, fmt.Errorf("render: partial row %d outside frame height %d", fy, height)
		}
		for x := 0; x < mine.W; x++ {
			fx := mine.X0 + x
			if fx < 0 || fx >= width {
				return nil, fmt.Errorf("render: partial column %d outside frame width %d", fx, width)
			}
			src := 4 * (y*mine.W + x)
			dst := 4 * (fy*width + fx)
			copy(frame[dst:dst+4], mine.RGBA[src:src+4])
		}
	}

	lo, hi := 0, width*height // current region, in pixels
	z := mine.Z0
	rounds := bits.TrailingZeros(uint(p))
	const tagBase = 7100
	for r := 0; r < rounds; r++ {
		partner := c.Rank() ^ (1 << r)
		mid := lo + (hi-lo)/2
		keepLo, keepHi := lo, mid
		sendLo, sendHi := mid, hi
		if c.Rank()&(1<<r) != 0 {
			keepLo, keepHi = mid, hi
			sendLo, sendHi = lo, mid
		}
		payload := encodeSwap(z, frame[4*sendLo:4*sendHi])
		got, err := c.Sendrecv(partner, partner, tagBase+r, payload)
		if err != nil {
			return nil, err
		}
		theirZ, theirPix, err := decodeSwap(got)
		if err != nil {
			return nil, fmt.Errorf("render: swap round %d from rank %d: %w", r, partner, err)
		}
		if len(theirPix) != 4*(keepHi-keepLo) {
			return nil, fmt.Errorf("render: swap round %d: got %d floats, want %d",
				r, len(theirPix), 4*(keepHi-keepLo))
		}
		compositeRegion(frame[4*keepLo:4*keepHi], theirPix, z <= theirZ)
		if theirZ < z {
			z = theirZ
		}
		lo, hi = keepLo, keepHi
	}

	// Gather the P region strips at root and assemble.
	final := encodeSwap(lo, frame[4*lo:4*hi])
	parts, err := c.Gather(root, final)
	if err != nil {
		return nil, err
	}
	if c.Rank() != root {
		return nil, nil
	}
	img := image.NewRGBA(image.Rect(0, 0, width, height))
	for rk, part := range parts {
		start, pix, err := decodeSwap(part)
		if err != nil {
			return nil, fmt.Errorf("render: final strip from rank %d: %w", rk, err)
		}
		for i := 0; i < len(pix)/4; i++ {
			px := start + i
			img.SetRGBA(px%width, px/width, color.RGBA{
				R: uint8(255*math.Min(1, pix[4*i]) + 0.5),
				G: uint8(255*math.Min(1, pix[4*i+1]) + 0.5),
				B: uint8(255*math.Min(1, pix[4*i+2]) + 0.5),
				A: 255,
			})
		}
	}
	return img, nil
}

// compositeRegion merges theirs into ours in place. When oursInFront,
// ours is the front operand of the over operator; otherwise theirs is.
func compositeRegion(ours, theirs []float64, oursInFront bool) {
	for i := 0; i < len(ours); i += 4 {
		var f, b []float64
		if oursInFront {
			f, b = ours[i:i+4], theirs[i:i+4]
		} else {
			f, b = theirs[i:i+4], ours[i:i+4]
		}
		t := 1 - f[3]
		ours[i] = f[0] + t*b[0]
		ours[i+1] = f[1] + t*b[1]
		ours[i+2] = f[2] + t*b[2]
		ours[i+3] = f[3] + t*b[3]
	}
}

// encodeSwap frames an int key (Z0 or strip start) and a float64 payload.
func encodeSwap(key int, pix []float64) []byte {
	out := make([]byte, 8, 8+8*len(pix))
	out[0] = byte(key)
	out[1] = byte(key >> 8)
	out[2] = byte(key >> 16)
	out[3] = byte(key >> 24)
	return append(out, fielddata.Float64Bytes(pix)...)
}

// decodeSwap reverses encodeSwap.
func decodeSwap(buf []byte) (int, []float64, error) {
	if len(buf) < 8 || (len(buf)-8)%8 != 0 {
		return 0, nil, fmt.Errorf("render: malformed swap payload of %d bytes", len(buf))
	}
	key := int(int32(uint32(buf[0]) | uint32(buf[1])<<8 | uint32(buf[2])<<16 | uint32(buf[3])<<24))
	return key, fielddata.BytesFloat64(buf[8:]), nil
}
