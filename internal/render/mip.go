package render

import (
	"fmt"
	"image"
	"image/color"
	"math"

	"ddr/internal/fielddata"
	"ddr/internal/mpi"
)

// Maximum intensity projection (MIP): the other standard volume
// visualization mode besides compositing DVR — each pixel shows the
// largest sample along its ray. Because max is commutative and
// associative, parallel MIP needs no depth ordering at all: partial
// projections merge in any order, which makes it the cheapest possible
// sort-last pipeline.

// MIPPartial is a per-brick maximum projection of the brick's footprint.
type MIPPartial struct {
	X0, Y0 int
	W, H   int
	Max    []float32 // W*H per-pixel maxima
}

// RenderBrickMIP projects the brick along +z, keeping each pixel's
// maximum sample.
func RenderBrickMIP(b Brick) (*MIPPartial, error) {
	if err := b.Validate(); err != nil {
		return nil, err
	}
	w, h, d := b.Box.Dims[0], b.Box.Dims[1], b.Box.Dims[2]
	p := &MIPPartial{
		X0: b.Box.Offset[0], Y0: b.Box.Offset[1],
		W: w, H: h,
		Max: make([]float32, w*h),
	}
	for i := range p.Max {
		p.Max[i] = float32(math.Inf(-1))
	}
	for z := 0; z < d; z++ {
		for y := 0; y < h; y++ {
			row := ((z * h) + y) * w
			out := y * w
			for x := 0; x < w; x++ {
				if v := b.Values[row+x]; v > p.Max[out+x] {
					p.Max[out+x] = v
				}
			}
		}
	}
	return p, nil
}

// MIPComposite merges per-brick projections into a full-frame grayscale
// image: pixel intensity is the global maximum mapped through [lo, hi].
// Partial order is irrelevant.
func MIPComposite(partials []*MIPPartial, width, height int, lo, hi float64) (*image.RGBA, error) {
	if hi <= lo {
		return nil, fmt.Errorf("render: empty MIP range [%g,%g]", lo, hi)
	}
	acc := make([]float32, width*height)
	for i := range acc {
		acc[i] = float32(math.Inf(-1))
	}
	for _, p := range partials {
		for y := 0; y < p.H; y++ {
			fy := p.Y0 + y
			if fy < 0 || fy >= height {
				return nil, fmt.Errorf("render: MIP partial row %d outside frame", fy)
			}
			for x := 0; x < p.W; x++ {
				fx := p.X0 + x
				if fx < 0 || fx >= width {
					return nil, fmt.Errorf("render: MIP partial column %d outside frame", fx)
				}
				if v := p.Max[y*p.W+x]; v > acc[fy*width+fx] {
					acc[fy*width+fx] = v
				}
			}
		}
	}
	img := image.NewRGBA(image.Rect(0, 0, width, height))
	scale := 1 / (hi - lo)
	for i, v := range acc {
		t := (float64(v) - lo) * scale
		if math.IsInf(float64(v), -1) {
			t = 0
		}
		if t < 0 {
			t = 0
		}
		if t > 1 {
			t = 1
		}
		g := uint8(255*t + 0.5)
		img.SetRGBA(i%width, i/width, color.RGBA{R: g, G: g, B: g, A: 255})
	}
	return img, nil
}

// GatherMIP collects every rank's MIP partial at root and composites the
// frame there; non-root ranks return nil. Because max is commutative, the
// gather needs no ordering metadata.
func GatherMIP(c *mpi.Comm, root int, mine *MIPPartial, width, height int, lo, hi float64) (*image.RGBA, error) {
	hdr := []byte{byte(mine.X0), byte(mine.X0 >> 8), byte(mine.Y0), byte(mine.Y0 >> 8),
		byte(mine.W), byte(mine.W >> 8), byte(mine.H), byte(mine.H >> 8)}
	payload := append(hdr, fielddata.Float32Bytes(mine.Max)...)
	parts, err := c.Gather(root, payload)
	if err != nil {
		return nil, err
	}
	if c.Rank() != root {
		return nil, nil
	}
	partials := make([]*MIPPartial, len(parts))
	for i, buf := range parts {
		if len(buf) < 8 {
			return nil, fmt.Errorf("render: truncated MIP partial from rank %d", i)
		}
		p := &MIPPartial{
			X0: int(buf[0]) | int(buf[1])<<8,
			Y0: int(buf[2]) | int(buf[3])<<8,
			W:  int(buf[4]) | int(buf[5])<<8,
			H:  int(buf[6]) | int(buf[7])<<8,
		}
		p.Max = fielddata.BytesFloat32(buf[8:])
		if len(p.Max) != p.W*p.H {
			return nil, fmt.Errorf("render: MIP partial from rank %d has %d values for %dx%d",
				i, len(p.Max), p.W, p.H)
		}
		partials[i] = p
	}
	return MIPComposite(partials, width, height, lo, hi)
}
