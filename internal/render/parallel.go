package render

import (
	"encoding/binary"
	"fmt"
	"image"
	"math"

	"ddr/internal/mpi"
)

// encodePartial serializes a Partial for the compositing gather.
func encodePartial(p *Partial) []byte {
	hdr := 5 * 4
	out := make([]byte, hdr+8*len(p.RGBA))
	le := binary.LittleEndian
	le.PutUint32(out[0:], uint32(int32(p.X0)))
	le.PutUint32(out[4:], uint32(int32(p.Y0)))
	le.PutUint32(out[8:], uint32(int32(p.W)))
	le.PutUint32(out[12:], uint32(int32(p.H)))
	le.PutUint32(out[16:], uint32(int32(p.Z0)))
	for i, v := range p.RGBA {
		le.PutUint64(out[hdr+8*i:], math.Float64bits(v))
	}
	return out
}

// decodePartial reverses encodePartial.
func decodePartial(buf []byte) (*Partial, error) {
	const hdr = 5 * 4
	if len(buf) < hdr {
		return nil, fmt.Errorf("render: truncated partial header")
	}
	le := binary.LittleEndian
	p := &Partial{
		X0: int(int32(le.Uint32(buf[0:]))),
		Y0: int(int32(le.Uint32(buf[4:]))),
		W:  int(int32(le.Uint32(buf[8:]))),
		H:  int(int32(le.Uint32(buf[12:]))),
		Z0: int(int32(le.Uint32(buf[16:]))),
	}
	body := buf[hdr:]
	if p.W <= 0 || p.H <= 0 || len(body) != 8*4*p.W*p.H {
		return nil, fmt.Errorf("render: partial body has %d bytes for %dx%d", len(body), p.W, p.H)
	}
	p.RGBA = make([]float64, 4*p.W*p.H)
	for i := range p.RGBA {
		p.RGBA[i] = math.Float64frombits(le.Uint64(body[8*i:]))
	}
	return p, nil
}

// GatherComposite renders nothing itself: it collects every rank's partial
// at root and assembles the final width×height frame there (sort-last
// compositing). Non-root ranks return nil.
func GatherComposite(c *mpi.Comm, root int, mine *Partial, width, height int) (*image.RGBA, error) {
	parts, err := c.Gather(root, encodePartial(mine))
	if err != nil {
		return nil, err
	}
	if c.Rank() != root {
		return nil, nil
	}
	partials := make([]*Partial, len(parts))
	for i, buf := range parts {
		if partials[i], err = decodePartial(buf); err != nil {
			return nil, fmt.Errorf("render: partial from rank %d: %w", i, err)
		}
	}
	return Composite(partials, width, height)
}
