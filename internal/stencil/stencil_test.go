package stencil

import (
	"errors"
	"fmt"
	"math"
	"testing"

	"ddr/internal/fielddata"
	"ddr/internal/grid"
	"ddr/internal/mpi"
)

func TestNewValidation(t *testing.T) {
	err := mpi.Launch(2, func(c *mpi.Comm) error {
		domain := grid.Box2(0, 0, 8, 8)
		tiles := grid.Grid2D(domain, 1, 2)
		if _, err := New(c, domain, tiles[:1], 1, 1); err == nil {
			return errors.New("short tile list accepted")
		}
		if _, err := New(c, domain, tiles, 0, 1); err == nil {
			return errors.New("zero halo width accepted")
		}
		// Overlapping tiles must be rejected by validation.
		bad := []grid.Box{grid.Box2(0, 0, 5, 8), grid.Box2(3, 0, 5, 8)}
		if _, err := New(c, domain, bad, 1, 1); err == nil {
			return errors.New("overlapping tiles accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestExchangeFillsGhosts: after Exchange, every halo cell holds the
// value of the rank that owns it.
func TestExchangeFillsGhosts(t *testing.T) {
	for _, width := range []int{1, 2} {
		width := width
		t.Run(fmt.Sprintf("width=%d", width), func(t *testing.T) {
			const n = 6
			domain := grid.Box2(0, 0, 18, 12)
			rows, cols := grid.Factor2(n)
			tiles := grid.Grid2D(domain, rows, cols)
			value := func(x, y int) byte { return byte(7*x + 13*y) }
			err := mpi.Launch(n, func(c *mpi.Comm) error {
				ex, err := New(c, domain, tiles, width, 1)
				if err != nil {
					return err
				}
				tile := ex.Tile()
				tileBuf := make([]byte, ex.TileBytes())
				i := 0
				for y := 0; y < tile.Dims[1]; y++ {
					for x := 0; x < tile.Dims[0]; x++ {
						tileBuf[i] = value(tile.Offset[0]+x, tile.Offset[1]+y)
						i++
					}
				}
				haloBuf := make([]byte, ex.HaloBytes())
				if err := ex.Exchange(tileBuf, haloBuf); err != nil {
					return err
				}
				halo := ex.Halo()
				i = 0
				for y := 0; y < halo.Dims[1]; y++ {
					for x := 0; x < halo.Dims[0]; x++ {
						gx, gy := halo.Offset[0]+x, halo.Offset[1]+y
						if haloBuf[i] != value(gx, gy) {
							return fmt.Errorf("rank %d ghost (%d,%d) = %d, want %d",
								c.Rank(), gx, gy, haloBuf[i], value(gx, gy))
						}
						i++
					}
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestExtractInsertTile(t *testing.T) {
	err := mpi.Launch(4, func(c *mpi.Comm) error {
		domain := grid.Box2(0, 0, 8, 8)
		tiles := grid.Grid2D(domain, 2, 2)
		ex, err := New(c, domain, tiles, 1, 1)
		if err != nil {
			return err
		}
		tileBuf := make([]byte, ex.TileBytes())
		for i := range tileBuf {
			tileBuf[i] = byte(10*c.Rank() + i)
		}
		haloBuf := make([]byte, ex.HaloBytes())
		if err := ex.InsertTile(tileBuf, haloBuf); err != nil {
			return err
		}
		back := make([]byte, ex.TileBytes())
		if err := ex.ExtractTile(haloBuf, back); err != nil {
			return err
		}
		for i := range tileBuf {
			if back[i] != tileBuf[i] {
				return fmt.Errorf("rank %d element %d: %d != %d", c.Rank(), i, back[i], tileBuf[i])
			}
		}
		if err := ex.ExtractTile(haloBuf[:1], back); err == nil {
			return errors.New("short halo buffer accepted")
		}
		if err := ex.InsertTile(tileBuf[:1], haloBuf); err == nil {
			return errors.New("short tile buffer accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// jacobiSerial runs iters steps of 4-neighbor Jacobi heat diffusion on
// the full grid with fixed boundary values, returning the field.
func jacobiSerial(w, h, iters int, init func(x, y int) float64) []float64 {
	cur := make([]float64, w*h)
	next := make([]float64, w*h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			cur[y*w+x] = init(x, y)
		}
	}
	for it := 0; it < iters; it++ {
		for y := 1; y < h-1; y++ {
			for x := 1; x < w-1; x++ {
				next[y*w+x] = 0.25 * (cur[y*w+x-1] + cur[y*w+x+1] + cur[(y-1)*w+x] + cur[(y+1)*w+x])
			}
		}
		for x := 0; x < w; x++ {
			next[x] = cur[x]
			next[(h-1)*w+x] = cur[(h-1)*w+x]
		}
		for y := 0; y < h; y++ {
			next[y*w] = cur[y*w]
			next[y*w+w-1] = cur[y*w+w-1]
		}
		cur, next = next, cur
	}
	return cur
}

// TestJacobiParallelMatchesSerial runs the same diffusion decomposed over
// 6 ranks with stencil halo exchange; results must match the serial run
// bit-for-bit.
func TestJacobiParallelMatchesSerial(t *testing.T) {
	const w, h, iters, n = 18, 12, 20, 6
	init := func(x, y int) float64 {
		if x == 0 {
			return 100 // hot left wall
		}
		return float64((x * y) % 7)
	}
	want := jacobiSerial(w, h, iters, init)

	domain := grid.Box2(0, 0, w, h)
	rows, cols := grid.Factor2(n)
	tiles := grid.Grid2D(domain, rows, cols)
	err := mpi.Launch(n, func(c *mpi.Comm) error {
		ex, err := New(c, domain, tiles, 1, 8)
		if err != nil {
			return err
		}
		tile := ex.Tile()
		cur := make([]float64, tile.Volume())
		i := 0
		for y := 0; y < tile.Dims[1]; y++ {
			for x := 0; x < tile.Dims[0]; x++ {
				cur[i] = init(tile.Offset[0]+x, tile.Offset[1]+y)
				i++
			}
		}
		haloBuf := make([]byte, ex.HaloBytes())
		for it := 0; it < iters; it++ {
			if err := ex.Exchange(fielddata.Float64Bytes(cur), haloBuf); err != nil {
				return err
			}
			halo := ex.Halo()
			hf := fielddata.BytesFloat64(haloBuf)
			at := func(gx, gy int) float64 {
				return hf[(gy-halo.Offset[1])*halo.Dims[0]+(gx-halo.Offset[0])]
			}
			i = 0
			for y := 0; y < tile.Dims[1]; y++ {
				gy := tile.Offset[1] + y
				for x := 0; x < tile.Dims[0]; x++ {
					gx := tile.Offset[0] + x
					if gx == 0 || gx == w-1 || gy == 0 || gy == h-1 {
						i++ // fixed boundary
						continue
					}
					cur[i] = 0.25 * (at(gx-1, gy) + at(gx+1, gy) + at(gx, gy-1) + at(gx, gy+1))
					i++
				}
			}
		}
		i = 0
		for y := 0; y < tile.Dims[1]; y++ {
			gy := tile.Offset[1] + y
			for x := 0; x < tile.Dims[0]; x++ {
				gx := tile.Offset[0] + x
				if cur[i] != want[gy*w+gx] {
					return fmt.Errorf("rank %d cell (%d,%d): %g != %g (diff %g)",
						c.Rank(), gx, gy, cur[i], want[gy*w+gx], math.Abs(cur[i]-want[gy*w+gx]))
				}
				i++
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestExchange3D exercises halo exchange on a 3D brick decomposition.
func TestExchange3D(t *testing.T) {
	const n = 8
	domain := grid.Box3(0, 0, 0, 10, 8, 6)
	x, y, z := grid.Factor3(n)
	tiles := grid.Bricks3D(domain, x, y, z)
	value := func(x, y, z int) byte { return byte(x + 3*y + 11*z) }
	err := mpi.Launch(n, func(c *mpi.Comm) error {
		ex, err := New(c, domain, tiles, 1, 1)
		if err != nil {
			return err
		}
		tile := ex.Tile()
		tileBuf := make([]byte, ex.TileBytes())
		i := 0
		for zz := 0; zz < tile.Dims[2]; zz++ {
			for yy := 0; yy < tile.Dims[1]; yy++ {
				for xx := 0; xx < tile.Dims[0]; xx++ {
					tileBuf[i] = value(tile.Offset[0]+xx, tile.Offset[1]+yy, tile.Offset[2]+zz)
					i++
				}
			}
		}
		haloBuf := make([]byte, ex.HaloBytes())
		if err := ex.Exchange(tileBuf, haloBuf); err != nil {
			return err
		}
		halo := ex.Halo()
		i = 0
		for zz := 0; zz < halo.Dims[2]; zz++ {
			for yy := 0; yy < halo.Dims[1]; yy++ {
				for xx := 0; xx < halo.Dims[0]; xx++ {
					gx, gy, gz := halo.Offset[0]+xx, halo.Offset[1]+yy, halo.Offset[2]+zz
					if haloBuf[i] != value(gx, gy, gz) {
						return fmt.Errorf("rank %d ghost (%d,%d,%d) wrong", c.Rank(), gx, gy, gz)
					}
					i++
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
