// Package stencil provides ghost-zone ("halo") exchange for iterative
// codes, built entirely on DDR's overlapping-receive semantics: every
// rank owns one tile of the domain and needs its tile grown by the halo
// width, which overlaps the neighbors' tiles. One DDR mapping set up per
// decomposition serves every iteration.
//
// The paper contrasts DDR with DIY2's neighbor-exchange abstraction
// (§II-B); this package shows the two styles converge — DDR's general
// redistribution subsumes structured halo exchange, including corner
// neighbors and halos wider than one cell, with no neighbor bookkeeping
// in the application.
package stencil

import (
	"fmt"

	"ddr/internal/core"
	"ddr/internal/grid"
	"ddr/internal/mpi"
)

// Exchanger performs halo exchanges for one rank's tile of a decomposed
// domain.
type Exchanger struct {
	desc  *core.Descriptor
	comm  *mpi.Comm
	tile  grid.Box
	halo  grid.Box // tile grown by the halo width, clamped to the domain
	width int
	elem  int
}

// New builds the exchanger. tiles lists every rank's tile (they must be
// mutually exclusive and complete over domain — verified collectively);
// this rank works on tiles[c.Rank()]. width is the halo width in cells
// and elemSize the bytes per element. Collective over c.
func New(c *mpi.Comm, domain grid.Box, tiles []grid.Box, width, elemSize int, opts ...core.Option) (*Exchanger, error) {
	if len(tiles) != c.Size() {
		return nil, fmt.Errorf("stencil: %d tiles for %d ranks", len(tiles), c.Size())
	}
	if width < 1 {
		return nil, fmt.Errorf("stencil: halo width %d must be at least 1", width)
	}
	layout := core.Layout(domain.NDims)
	tile := tiles[c.Rank()]
	halo := tile.Grow(width, domain)
	opts = append([]core.Option{core.WithValidation()}, opts...)
	desc, err := core.NewDescriptor(c.Size(), layout, core.Uint8, append([]core.Option{core.WithElemSize(elemSize)}, opts...)...)
	if err != nil {
		return nil, err
	}
	if err := desc.SetupDataMapping(c, []grid.Box{tile}, halo); err != nil {
		return nil, err
	}
	return &Exchanger{desc: desc, comm: c, tile: tile, halo: halo, width: width, elem: elemSize}, nil
}

// Tile returns this rank's owned region.
func (e *Exchanger) Tile() grid.Box { return e.tile }

// Halo returns the tile grown by the halo width (the extent of the
// buffers Exchange operates on).
func (e *Exchanger) Halo() grid.Box { return e.halo }

// TileBytes returns the byte size of a tile buffer.
func (e *Exchanger) TileBytes() int { return e.tile.Volume() * e.elem }

// HaloBytes returns the byte size of a halo'd buffer.
func (e *Exchanger) HaloBytes() int { return e.halo.Volume() * e.elem }

// Exchange fills haloBuf (sized HaloBytes, covering Halo()) from tileBuf
// (sized TileBytes, covering Tile()): interior cells are copied from the
// local tile and ghost cells arrive from the owning neighbors. Cells of
// the halo box outside the global domain never exist (the halo box is
// clamped), so boundary tiles simply have smaller halos.
func (e *Exchanger) Exchange(tileBuf, haloBuf []byte) error {
	return e.desc.ReorganizeData(e.comm, [][]byte{tileBuf}, haloBuf)
}

// ExtractTile copies the interior (tile) region out of a halo'd buffer,
// the inverse addressing of Exchange for writing results back.
func (e *Exchanger) ExtractTile(haloBuf, tileBuf []byte) error {
	if len(haloBuf) != e.HaloBytes() || len(tileBuf) != e.TileBytes() {
		return fmt.Errorf("stencil: buffer sizes %d/%d, want %d/%d",
			len(haloBuf), len(tileBuf), e.HaloBytes(), e.TileBytes())
	}
	copyRegion(haloBuf, e.halo, tileBuf, e.tile, e.tile, e.elem)
	return nil
}

// InsertTile copies a tile buffer into the interior of a halo'd buffer.
func (e *Exchanger) InsertTile(tileBuf, haloBuf []byte) error {
	if len(haloBuf) != e.HaloBytes() || len(tileBuf) != e.TileBytes() {
		return fmt.Errorf("stencil: buffer sizes %d/%d, want %d/%d",
			len(haloBuf), len(tileBuf), e.HaloBytes(), e.TileBytes())
	}
	copyRegion(tileBuf, e.tile, haloBuf, e.halo, e.tile, e.elem)
	return nil
}

// copyRegion copies the elements of region from a buffer laid out as src
// into a buffer laid out as dst (all boxes in global coordinates).
func copyRegion(srcBuf []byte, src grid.Box, dstBuf []byte, dst, region grid.Box, elem int) {
	rw := region.Dims[0] * elem
	for z := 0; z < region.Dims[2]; z++ {
		gz := region.Offset[2] + z
		for y := 0; y < region.Dims[1]; y++ {
			gy := region.Offset[1] + y
			srcOff := (((gz-src.Offset[2])*src.Dims[1]+(gy-src.Offset[1]))*src.Dims[0] +
				(region.Offset[0] - src.Offset[0])) * elem
			dstOff := (((gz-dst.Offset[2])*dst.Dims[1]+(gy-dst.Offset[1]))*dst.Dims[0] +
				(region.Offset[0] - dst.Offset[0])) * elem
			copy(dstBuf[dstOff:dstOff+rw], srcBuf[srcOff:srcOff+rw])
		}
	}
}
