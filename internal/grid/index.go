package grid

import "sort"

// Index is a static spatial index over a set of boxes, answering "which
// boxes overlap this query box" in O(log n + k) for the box populations
// DDR works with (tilings, slab/brick decompositions, need layouts). It
// replaces the brute-force linear scans that made plan compilation and
// tiling verification quadratic as process counts grow.
//
// The structure is a bulk-loaded R-tree (Sort-Tile-Recursive packing):
// entries are sorted by their center along each axis in turn and packed
// into fixed-fanout nodes whose bounding boxes guide the query descent.
// The index is immutable after NewIndex and safe for concurrent queries.
type Index struct {
	boxes []Box // the indexed boxes, in caller order
	live  []int // indices of non-empty boxes, STR-packed order
	nodes []indexNode
	root  int // node index of the root, -1 when empty
}

// indexFanout is the R-tree node capacity. Small enough that a node scan
// stays in cache, large enough to keep the tree shallow.
const indexFanout = 16

// indexNode is one R-tree node: a bounding box over either a run of
// packed leaf entries (leaf) or a run of child nodes (internal).
type indexNode struct {
	bounds   Box
	lo, hi   int  // half-open range into live (leaf) or nodes (internal)
	internal bool
}

// NewIndex builds an index over boxes. Empty boxes are never returned by
// queries. The slice is retained; callers must not mutate it afterwards.
func NewIndex(boxes []Box) *Index {
	ix := &Index{boxes: boxes, root: -1}
	for i, b := range boxes {
		if !b.Empty() {
			ix.live = append(ix.live, i)
		}
	}
	if len(ix.live) == 0 {
		return ix
	}
	ix.pack(0, len(ix.live), 0)
	// Build leaves over the packed order, then stack internal levels on
	// top until a single root remains.
	level := make([]int, 0, (len(ix.live)+indexFanout-1)/indexFanout)
	for lo := 0; lo < len(ix.live); lo += indexFanout {
		hi := min(lo+indexFanout, len(ix.live))
		bb := ix.boxes[ix.live[lo]]
		for _, id := range ix.live[lo+1 : hi] {
			bb = mergeBounds(bb, ix.boxes[id])
		}
		ix.nodes = append(ix.nodes, indexNode{bounds: bb, lo: lo, hi: hi})
		level = append(level, len(ix.nodes)-1)
	}
	for len(level) > 1 {
		next := level[:0:0]
		for lo := 0; lo < len(level); lo += indexFanout {
			hi := min(lo+indexFanout, len(level))
			bb := ix.nodes[level[lo]].bounds
			for _, n := range level[lo+1 : hi] {
				bb = mergeBounds(bb, ix.nodes[n].bounds)
			}
			// Children of one parent are built contiguously, so the run
			// [level[lo], level[hi-1]+1) addresses them directly.
			ix.nodes = append(ix.nodes, indexNode{
				bounds: bb, lo: level[lo], hi: level[hi-1] + 1, internal: true,
			})
			next = append(next, len(ix.nodes)-1)
		}
		level = next
	}
	ix.root = level[0]
	return ix
}

// mergeBounds returns the bounding box of a and b (dimensionality of a).
func mergeBounds(a, b Box) Box {
	out := a
	for i := 0; i < a.NDims; i++ {
		lo := min(a.Offset[i], b.Offset[i])
		hi := max(a.End(i), b.End(i))
		out.Offset[i] = lo
		out.Dims[i] = hi - lo
	}
	return out
}

// pack recursively sorts live[lo:hi] into STR order: sort by center along
// the current axis, slice into near-equal vertical runs, recurse on the
// next axis. The recursion bottoms out when a run fits a leaf or axes are
// exhausted.
func (ix *Index) pack(lo, hi, axis int) {
	n := hi - lo
	if n <= indexFanout {
		return
	}
	nd := ix.boxes[ix.live[lo]].NDims
	seg := ix.live[lo:hi]
	sort.Slice(seg, func(a, b int) bool {
		ba, bb := ix.boxes[seg[a]], ix.boxes[seg[b]]
		ca := 2*ba.Offset[axis] + ba.Dims[axis]
		cb := 2*bb.Offset[axis] + bb.Dims[axis]
		if ca != cb {
			return ca < cb
		}
		return seg[a] < seg[b]
	})
	if axis+1 >= nd {
		return
	}
	// Number of slices along this axis so each recursive run holds about
	// fanout^(remaining axes) entries, the standard STR slicing rule.
	leaves := (n + indexFanout - 1) / indexFanout
	slices := 1
	for s := 1; s*s <= leaves; s++ {
		slices = s
	}
	if slices <= 1 {
		ix.pack(lo, hi, axis+1)
		return
	}
	per := (n + slices - 1) / slices
	for s := lo; s < hi; s += per {
		ix.pack(s, min(s+per, hi), axis+1)
	}
}

// Query returns the indices (in the original slice, ascending) of every
// indexed box overlapping q.
func (ix *Index) Query(q Box) []int {
	return ix.QueryAppend(nil, q)
}

// QueryAppend appends the indices of every indexed box overlapping q to
// dst and returns it, ascending. Reusing dst across queries keeps the hot
// compile loops allocation-free.
func (ix *Index) QueryAppend(dst []int, q Box) []int {
	if ix.root < 0 || q.Empty() {
		return dst
	}
	start := len(dst)
	dst = ix.query(dst, ix.root, q)
	seg := dst[start:]
	sort.Ints(seg)
	return dst
}

func (ix *Index) query(dst []int, node int, q Box) []int {
	n := &ix.nodes[node]
	if !q.Overlaps(n.bounds) {
		return dst
	}
	if !n.internal {
		for _, id := range ix.live[n.lo:n.hi] {
			if q.Overlaps(ix.boxes[id]) {
				dst = append(dst, id)
			}
		}
		return dst
	}
	for c := n.lo; c < n.hi; c++ {
		dst = ix.query(dst, c, q)
	}
	return dst
}

// Len returns the number of non-empty indexed boxes.
func (ix *Index) Len() int { return len(ix.live) }
