package grid

// Subtract returns a \ b as a list of disjoint boxes that together cover
// exactly the cells of a not contained in b. The decomposition is the
// standard axis sweep — for each axis in order, the slab of a below b's
// low face and the slab above b's high face are split off and the
// remainder narrows to b's extent on that axis — so it is deterministic:
// equal inputs produce equal box lists in equal order. At most 2·NDims
// boxes are produced. When a and b are disjoint the result is [a]; when b
// covers a the result is nil.
//
// Subtract is the primitive behind the delta-plan compiler's geometry
// diff: the regions of a resized need box that are not already resident
// locally are exactly newNeed \ oldNeed.
func Subtract(a, b Box) []Box {
	return SubtractAppend(nil, a, b)
}

// SubtractAppend appends the boxes of a \ b to dst and returns it,
// following the Subtract contract. Reusing dst keeps diff-heavy loops
// allocation-free.
func SubtractAppend(dst []Box, a, b Box) []Box {
	if a.Empty() {
		return dst
	}
	iv, ok := a.Intersect(b)
	if !ok {
		return append(dst, a)
	}
	rem := a
	for axis := 0; axis < a.NDims; axis++ {
		if lo := iv.Offset[axis] - rem.Offset[axis]; lo > 0 {
			below := rem
			below.Dims[axis] = lo
			dst = append(dst, below)
		}
		if hi := rem.End(axis) - iv.End(axis); hi > 0 {
			above := rem
			above.Offset[axis] = iv.End(axis)
			above.Dims[axis] = hi
			dst = append(dst, above)
		}
		rem.Offset[axis] = iv.Offset[axis]
		rem.Dims[axis] = iv.Dims[axis]
	}
	return dst
}

// SubtractAll returns regions \ b: every region minus b, concatenated in
// region order. Inputs already disjoint stay disjoint.
func SubtractAll(regions []Box, b Box) []Box {
	var out []Box
	for _, r := range regions {
		out = SubtractAppend(out, r, b)
	}
	return out
}
