package grid

import (
	"fmt"
	"sort"
)

// SplitEven partitions length n into parts pieces whose sizes differ by at
// most one, returning the start offset of each piece plus a final sentinel
// equal to n. Earlier pieces receive the remainder, matching the common
// block distribution used by the paper's use cases.
func SplitEven(n, parts int) []int {
	if parts <= 0 {
		panic(fmt.Sprintf("grid: SplitEven with %d parts", parts))
	}
	starts := make([]int, parts+1)
	base, rem := n/parts, n%parts
	off := 0
	for i := 0; i < parts; i++ {
		starts[i] = off
		off += base
		if i < rem {
			off++
		}
	}
	starts[parts] = n
	return starts
}

// Slabs decomposes domain into count slabs along the given axis. Slab i is
// returned in element order; sizes differ by at most one element along the
// split axis. This is the decomposition the paper's LBM simulation uses
// (horizontal slices so each rank talks to at most two neighbors).
func Slabs(domain Box, axis, count int) []Box {
	if axis < 0 || axis >= domain.NDims {
		panic(fmt.Sprintf("grid: slab axis %d out of range for %dD domain", axis, domain.NDims))
	}
	starts := SplitEven(domain.Dims[axis], count)
	out := make([]Box, count)
	for i := range out {
		b := domain
		b.Offset[axis] = domain.Offset[axis] + starts[i]
		b.Dims[axis] = starts[i+1] - starts[i]
		out[i] = b
	}
	return out
}

// WeightedSlabs decomposes domain into len(weights) slabs along axis with
// cut points chosen so each slab's share of the total weight is as even
// as possible: weights[i] is the relative cost of slab i's rank (e.g.
// measured step time), so a slow rank receives proportionally fewer
// rows — the load-balancing counterpart of Slabs. All weights must be
// positive. Every slab is at least one cell thick when the axis allows
// it.
func WeightedSlabs(domain Box, axis int, weights []float64) ([]Box, error) {
	n := len(weights)
	if n == 0 {
		return nil, fmt.Errorf("grid: no weights")
	}
	if axis < 0 || axis >= domain.NDims {
		return nil, fmt.Errorf("grid: slab axis %d out of range for %dD domain", axis, domain.NDims)
	}
	if domain.Dims[axis] < n {
		return nil, fmt.Errorf("grid: %d slabs along an axis of %d cells", n, domain.Dims[axis])
	}
	// A rank's capacity is the inverse of its cost; distribute rows in
	// proportion to capacity.
	total := 0.0
	caps := make([]float64, n)
	for i, w := range weights {
		if w <= 0 {
			return nil, fmt.Errorf("grid: weight %d is %g, must be positive", i, w)
		}
		caps[i] = 1 / w
		total += caps[i]
	}
	rows := domain.Dims[axis]
	sizes := make([]int, n)
	assigned := 0
	for i := range sizes {
		sizes[i] = max(1, int(float64(rows)*caps[i]/total))
		assigned += sizes[i]
	}
	// Fix rounding drift by adjusting the largest-capacity slabs first.
	for assigned != rows {
		step := 1
		if assigned > rows {
			step = -1
		}
		best := -1
		for i := range sizes {
			if step < 0 && sizes[i] <= 1 {
				continue
			}
			if best == -1 || caps[i]*float64(step) > caps[best]*float64(step) {
				best = i
			}
		}
		sizes[best] += step
		assigned += step
	}
	out := make([]Box, n)
	off := domain.Offset[axis]
	for i := range out {
		b := domain
		b.Offset[axis] = off
		b.Dims[axis] = sizes[i]
		off += sizes[i]
		out[i] = b
	}
	return out, nil
}

// Factor2 returns the factorization rows×cols = count with rows ≤ cols and
// the two factors as close as possible — the "as close to square as
// possible" grid the paper's analysis application expects.
func Factor2(count int) (rows, cols int) {
	rows = 1
	for f := 1; f*f <= count; f++ {
		if count%f == 0 {
			rows = f
		}
	}
	return rows, count / rows
}

// Factor3 returns nx×ny×nz = count with the three factors as close to the
// cube root as possible (largest factor ≤ cube-root first), matching the
// near-cube brick decomposition used for distributed volume rendering.
func Factor3(count int) (nx, ny, nz int) {
	best := [3]int{1, 1, count}
	bestScore := -1
	for a := 1; a*a*a <= count; a++ {
		if count%a != 0 {
			continue
		}
		rest := count / a
		for b := a; b*b <= rest; b++ {
			if rest%b != 0 {
				continue
			}
			c := rest / b
			// Prefer the most balanced triple: maximize the minimum
			// factor, then minimize the maximum.
			score := a*1_000_000 + b*1_000 - c
			if score > bestScore {
				bestScore = score
				best = [3]int{a, b, c}
			}
		}
	}
	return best[0], best[1], best[2]
}

// Grid2D decomposes a 2D domain into rows×cols near-equal rectangles,
// returned row-major (rank = row*cols + col).
func Grid2D(domain Box, rows, cols int) []Box {
	if domain.NDims != 2 {
		panic("grid: Grid2D requires a 2D domain")
	}
	xs := SplitEven(domain.Dims[0], cols)
	ys := SplitEven(domain.Dims[1], rows)
	out := make([]Box, 0, rows*cols)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			out = append(out, Box2(
				domain.Offset[0]+xs[c], domain.Offset[1]+ys[r],
				xs[c+1]-xs[c], ys[r+1]-ys[r]))
		}
	}
	return out
}

// Bricks3D decomposes a 3D domain into nx×ny×nz near-equal boxes, returned
// x-fastest (rank = (z*ny+y)*nx + x). This is the brick decomposition the
// DVR use case needs.
func Bricks3D(domain Box, nx, ny, nz int) []Box {
	if domain.NDims != 3 {
		panic("grid: Bricks3D requires a 3D domain")
	}
	xs := SplitEven(domain.Dims[0], nx)
	ys := SplitEven(domain.Dims[1], ny)
	zs := SplitEven(domain.Dims[2], nz)
	out := make([]Box, 0, nx*ny*nz)
	for z := 0; z < nz; z++ {
		for y := 0; y < ny; y++ {
			for x := 0; x < nx; x++ {
				out = append(out, Box3(
					domain.Offset[0]+xs[x], domain.Offset[1]+ys[y], domain.Offset[2]+zs[z],
					xs[x+1]-xs[x], ys[y+1]-ys[y], zs[z+1]-zs[z]))
			}
		}
	}
	return out
}

// RCB decomposes domain into exactly n boxes by recursive coordinate
// bisection: each split halves the part count and cuts the current box
// along its longest axis in proportion to the two halves. Unlike
// Bricks3D, which needs n to factor into a grid, RCB produces compact
// near-equal-volume boxes for any n (e.g. 7 GPUs), the decomposition
// practical DVR runs need when node counts are not round. Requires
// domain.Volume() >= n.
func RCB(domain Box, n int) ([]Box, error) {
	if n < 1 {
		return nil, fmt.Errorf("grid: RCB needs at least one part, got %d", n)
	}
	if domain.Volume() < n {
		return nil, fmt.Errorf("grid: domain %v too small for %d parts", domain, n)
	}
	out := make([]Box, 0, n)
	var split func(b Box, parts int) error
	split = func(b Box, parts int) error {
		if parts == 1 {
			out = append(out, b)
			return nil
		}
		// Longest splittable axis.
		axis := -1
		for i := 0; i < b.NDims; i++ {
			if b.Dims[i] > 1 && (axis == -1 || b.Dims[i] > b.Dims[axis]) {
				axis = i
			}
		}
		if axis == -1 {
			return fmt.Errorf("grid: RCB cannot split unit box %v into %d parts", b, parts)
		}
		// Cut near the middle, then hand each side a part count
		// proportional to its volume, clamped so both sides stay feasible
		// (possible because b.Volume() >= parts).
		cut := b.Dims[axis] / 2
		if cut < 1 {
			cut = 1
		}
		lo, hi := b, b
		lo.Dims[axis] = cut
		hi.Offset[axis] += cut
		hi.Dims[axis] -= cut
		loVol, hiVol := lo.Volume(), hi.Volume()
		left := (parts*loVol + (loVol+hiVol)/2) / (loVol + hiVol)
		if left < parts-hiVol {
			left = parts - hiVol
		}
		if left > loVol {
			left = loVol
		}
		if left < 1 {
			left = 1
		}
		if left > parts-1 {
			left = parts - 1
		}
		if err := split(lo, left); err != nil {
			return err
		}
		return split(hi, parts-left)
	}
	if err := split(domain, n); err != nil {
		return nil, err
	}
	return out, nil
}

// RoundRobinSlices assigns the `count` unit-thick slices of domain along
// axis to nRanks ranks round-robin and returns, per rank, the list of
// slices it owns (each slice a separate chunk — the paper's "DDR
// (Round-Robin)" configuration for TIFF loading).
func RoundRobinSlices(domain Box, axis, nRanks int) [][]Box {
	out := make([][]Box, nRanks)
	n := domain.Dims[axis]
	for s := 0; s < n; s++ {
		r := s % nRanks
		b := domain
		b.Offset[axis] = domain.Offset[axis] + s
		b.Dims[axis] = 1
		out[r] = append(out[r], b)
	}
	return out
}

// ConsecutiveSlices assigns consecutive runs of slices along axis to each
// rank, one contiguous chunk per rank (the paper's "DDR (Consecutive)"
// configuration). Rank i's chunk may be empty if n < nRanks.
func ConsecutiveSlices(domain Box, axis, nRanks int) [][]Box {
	starts := SplitEven(domain.Dims[axis], nRanks)
	out := make([][]Box, nRanks)
	for i := 0; i < nRanks; i++ {
		if starts[i+1] == starts[i] {
			continue
		}
		b := domain
		b.Offset[axis] = domain.Offset[axis] + starts[i]
		b.Dims[axis] = starts[i+1] - starts[i]
		out[i] = []Box{b}
	}
	return out
}

// CoverageError describes how a set of boxes fails to tile a domain.
type CoverageError struct {
	Overlap  *[2]int // indices of two overlapping boxes, if any
	Escapee  *int    // index of a box not contained in the domain, if any
	Shortage int     // number of domain elements covered by no box
}

func (e *CoverageError) Error() string {
	switch {
	case e.Overlap != nil:
		return fmt.Sprintf("grid: boxes %d and %d overlap", e.Overlap[0], e.Overlap[1])
	case e.Escapee != nil:
		return fmt.Sprintf("grid: box %d extends outside the domain", *e.Escapee)
	default:
		return fmt.Sprintf("grid: %d domain elements are uncovered", e.Shortage)
	}
}

// VerifyTiling checks that boxes are pairwise disjoint, contained in
// domain, and collectively cover it — the "mutually exclusive and
// complete" requirement the paper places on owned data. Empty boxes are
// ignored. Returns nil when the tiling is exact.
func VerifyTiling(domain Box, boxes []Box) error {
	vol := 0
	live := make([]int, 0, len(boxes))
	for i, b := range boxes {
		if b.Empty() {
			continue
		}
		if !domain.Contains(b) {
			i := i
			return &CoverageError{Escapee: &i}
		}
		vol += b.Volume()
		live = append(live, i)
	}
	// Sweep by low corner on axis 0 to keep the pairwise test near O(n log n)
	// for typical slab-like inputs.
	sort.Slice(live, func(a, b int) bool {
		return boxes[live[a]].Offset[0] < boxes[live[b]].Offset[0]
	})
	for ai := range live {
		a := boxes[live[ai]]
		for bi := ai + 1; bi < len(live); bi++ {
			b := boxes[live[bi]]
			if b.Offset[0] >= a.End(0) {
				break
			}
			if a.Overlaps(b) {
				return &CoverageError{Overlap: &[2]int{live[ai], live[bi]}}
			}
		}
	}
	if vol != domain.Volume() {
		return &CoverageError{Shortage: domain.Volume() - vol}
	}
	return nil
}
