package grid

import (
	"fmt"
	"strings"
)

// SplitEven partitions length n into parts pieces whose sizes differ by at
// most one, returning the start offset of each piece plus a final sentinel
// equal to n. Earlier pieces receive the remainder, matching the common
// block distribution used by the paper's use cases.
func SplitEven(n, parts int) []int {
	if parts <= 0 {
		panic(fmt.Sprintf("grid: SplitEven with %d parts", parts))
	}
	starts := make([]int, parts+1)
	base, rem := n/parts, n%parts
	off := 0
	for i := 0; i < parts; i++ {
		starts[i] = off
		off += base
		if i < rem {
			off++
		}
	}
	starts[parts] = n
	return starts
}

// Slabs decomposes domain into count slabs along the given axis. Slab i is
// returned in element order; sizes differ by at most one element along the
// split axis. This is the decomposition the paper's LBM simulation uses
// (horizontal slices so each rank talks to at most two neighbors).
func Slabs(domain Box, axis, count int) []Box {
	if axis < 0 || axis >= domain.NDims {
		panic(fmt.Sprintf("grid: slab axis %d out of range for %dD domain", axis, domain.NDims))
	}
	starts := SplitEven(domain.Dims[axis], count)
	out := make([]Box, count)
	for i := range out {
		b := domain
		b.Offset[axis] = domain.Offset[axis] + starts[i]
		b.Dims[axis] = starts[i+1] - starts[i]
		out[i] = b
	}
	return out
}

// WeightedSlabs decomposes domain into len(weights) slabs along axis with
// cut points chosen so each slab's share of the total weight is as even
// as possible: weights[i] is the relative cost of slab i's rank (e.g.
// measured step time), so a slow rank receives proportionally fewer
// rows — the load-balancing counterpart of Slabs. All weights must be
// positive. Every slab is at least one cell thick when the axis allows
// it.
func WeightedSlabs(domain Box, axis int, weights []float64) ([]Box, error) {
	n := len(weights)
	if n == 0 {
		return nil, fmt.Errorf("grid: no weights")
	}
	if axis < 0 || axis >= domain.NDims {
		return nil, fmt.Errorf("grid: slab axis %d out of range for %dD domain", axis, domain.NDims)
	}
	if domain.Dims[axis] < n {
		return nil, fmt.Errorf("grid: %d slabs along an axis of %d cells", n, domain.Dims[axis])
	}
	// A rank's capacity is the inverse of its cost; distribute rows in
	// proportion to capacity.
	total := 0.0
	caps := make([]float64, n)
	for i, w := range weights {
		if w <= 0 {
			return nil, fmt.Errorf("grid: weight %d is %g, must be positive", i, w)
		}
		caps[i] = 1 / w
		total += caps[i]
	}
	rows := domain.Dims[axis]
	sizes := make([]int, n)
	assigned := 0
	for i := range sizes {
		sizes[i] = max(1, int(float64(rows)*caps[i]/total))
		assigned += sizes[i]
	}
	// Fix rounding drift by adjusting the largest-capacity slabs first.
	for assigned != rows {
		step := 1
		if assigned > rows {
			step = -1
		}
		best := -1
		for i := range sizes {
			if step < 0 && sizes[i] <= 1 {
				continue
			}
			if best == -1 || caps[i]*float64(step) > caps[best]*float64(step) {
				best = i
			}
		}
		sizes[best] += step
		assigned += step
	}
	out := make([]Box, n)
	off := domain.Offset[axis]
	for i := range out {
		b := domain
		b.Offset[axis] = off
		b.Dims[axis] = sizes[i]
		off += sizes[i]
		out[i] = b
	}
	return out, nil
}

// Factor2 returns the factorization rows×cols = count with rows ≤ cols and
// the two factors as close as possible — the "as close to square as
// possible" grid the paper's analysis application expects.
func Factor2(count int) (rows, cols int) {
	rows = 1
	for f := 1; f*f <= count; f++ {
		if count%f == 0 {
			rows = f
		}
	}
	return rows, count / rows
}

// Factor3 returns nx×ny×nz = count with the three factors as close to the
// cube root as possible (largest factor ≤ cube-root first), matching the
// near-cube brick decomposition used for distributed volume rendering.
func Factor3(count int) (nx, ny, nz int) {
	best := [3]int{1, 1, count}
	bestScore := -1
	for a := 1; a*a*a <= count; a++ {
		if count%a != 0 {
			continue
		}
		rest := count / a
		for b := a; b*b <= rest; b++ {
			if rest%b != 0 {
				continue
			}
			c := rest / b
			// Prefer the most balanced triple: maximize the minimum
			// factor, then minimize the maximum.
			score := a*1_000_000 + b*1_000 - c
			if score > bestScore {
				bestScore = score
				best = [3]int{a, b, c}
			}
		}
	}
	return best[0], best[1], best[2]
}

// Grid2D decomposes a 2D domain into rows×cols near-equal rectangles,
// returned row-major (rank = row*cols + col).
func Grid2D(domain Box, rows, cols int) []Box {
	if domain.NDims != 2 {
		panic("grid: Grid2D requires a 2D domain")
	}
	xs := SplitEven(domain.Dims[0], cols)
	ys := SplitEven(domain.Dims[1], rows)
	out := make([]Box, 0, rows*cols)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			out = append(out, Box2(
				domain.Offset[0]+xs[c], domain.Offset[1]+ys[r],
				xs[c+1]-xs[c], ys[r+1]-ys[r]))
		}
	}
	return out
}

// Bricks3D decomposes a 3D domain into nx×ny×nz near-equal boxes, returned
// x-fastest (rank = (z*ny+y)*nx + x). This is the brick decomposition the
// DVR use case needs.
func Bricks3D(domain Box, nx, ny, nz int) []Box {
	if domain.NDims != 3 {
		panic("grid: Bricks3D requires a 3D domain")
	}
	xs := SplitEven(domain.Dims[0], nx)
	ys := SplitEven(domain.Dims[1], ny)
	zs := SplitEven(domain.Dims[2], nz)
	out := make([]Box, 0, nx*ny*nz)
	for z := 0; z < nz; z++ {
		for y := 0; y < ny; y++ {
			for x := 0; x < nx; x++ {
				out = append(out, Box3(
					domain.Offset[0]+xs[x], domain.Offset[1]+ys[y], domain.Offset[2]+zs[z],
					xs[x+1]-xs[x], ys[y+1]-ys[y], zs[z+1]-zs[z]))
			}
		}
	}
	return out
}

// RCB decomposes domain into exactly n boxes by recursive coordinate
// bisection: each split halves the part count and cuts the current box
// along its longest axis in proportion to the two halves. Unlike
// Bricks3D, which needs n to factor into a grid, RCB produces compact
// near-equal-volume boxes for any n (e.g. 7 GPUs), the decomposition
// practical DVR runs need when node counts are not round. Requires
// domain.Volume() >= n.
func RCB(domain Box, n int) ([]Box, error) {
	if n < 1 {
		return nil, fmt.Errorf("grid: RCB needs at least one part, got %d", n)
	}
	if domain.Volume() < n {
		return nil, fmt.Errorf("grid: domain %v too small for %d parts", domain, n)
	}
	out := make([]Box, 0, n)
	var split func(b Box, parts int) error
	split = func(b Box, parts int) error {
		if parts == 1 {
			out = append(out, b)
			return nil
		}
		// Longest splittable axis.
		axis := -1
		for i := 0; i < b.NDims; i++ {
			if b.Dims[i] > 1 && (axis == -1 || b.Dims[i] > b.Dims[axis]) {
				axis = i
			}
		}
		if axis == -1 {
			return fmt.Errorf("grid: RCB cannot split unit box %v into %d parts", b, parts)
		}
		// Cut near the middle, then hand each side a part count
		// proportional to its volume, clamped so both sides stay feasible
		// (possible because b.Volume() >= parts).
		cut := b.Dims[axis] / 2
		if cut < 1 {
			cut = 1
		}
		lo, hi := b, b
		lo.Dims[axis] = cut
		hi.Offset[axis] += cut
		hi.Dims[axis] -= cut
		loVol, hiVol := lo.Volume(), hi.Volume()
		left := (parts*loVol + (loVol+hiVol)/2) / (loVol + hiVol)
		if left < parts-hiVol {
			left = parts - hiVol
		}
		if left > loVol {
			left = loVol
		}
		if left < 1 {
			left = 1
		}
		if left > parts-1 {
			left = parts - 1
		}
		if err := split(lo, left); err != nil {
			return err
		}
		return split(hi, parts-left)
	}
	if err := split(domain, n); err != nil {
		return nil, err
	}
	return out, nil
}

// RoundRobinSlices assigns the `count` unit-thick slices of domain along
// axis to nRanks ranks round-robin and returns, per rank, the list of
// slices it owns (each slice a separate chunk — the paper's "DDR
// (Round-Robin)" configuration for TIFF loading).
func RoundRobinSlices(domain Box, axis, nRanks int) [][]Box {
	out := make([][]Box, nRanks)
	n := domain.Dims[axis]
	for s := 0; s < n; s++ {
		r := s % nRanks
		b := domain
		b.Offset[axis] = domain.Offset[axis] + s
		b.Dims[axis] = 1
		out[r] = append(out[r], b)
	}
	return out
}

// ConsecutiveSlices assigns consecutive runs of slices along axis to each
// rank, one contiguous chunk per rank (the paper's "DDR (Consecutive)"
// configuration). Rank i's chunk may be empty if n < nRanks.
func ConsecutiveSlices(domain Box, axis, nRanks int) [][]Box {
	starts := SplitEven(domain.Dims[axis], nRanks)
	out := make([][]Box, nRanks)
	for i := 0; i < nRanks; i++ {
		if starts[i+1] == starts[i] {
			continue
		}
		b := domain
		b.Offset[axis] = domain.Offset[axis] + starts[i]
		b.Dims[axis] = starts[i+1] - starts[i]
		out[i] = []Box{b}
	}
	return out
}

// MaxReportedOverlaps bounds how many overlapping pairs a CoverageError
// enumerates; a broken layout at scale can overlap nearly everywhere, and
// the first few pairs are what a human needs to locate the bug.
const MaxReportedOverlaps = 10

// OverlapPair is one violation of mutual exclusivity: two boxes sharing
// at least one element, with their owning ranks when known.
type OverlapPair struct {
	Boxes  [2]int // indices into the verified slice, ascending
	Owners [2]int // owning ranks, or -1 when the caller gave no owners
	Region Box    // the shared region
}

func (p OverlapPair) String() string {
	if p.Owners[0] >= 0 || p.Owners[1] >= 0 {
		return fmt.Sprintf("box %d (rank %d) and box %d (rank %d) share %v",
			p.Boxes[0], p.Owners[0], p.Boxes[1], p.Owners[1], p.Region)
	}
	return fmt.Sprintf("boxes %d and %d share %v", p.Boxes[0], p.Boxes[1], p.Region)
}

// CoverageError describes how a set of boxes fails to tile a domain.
type CoverageError struct {
	// Overlaps lists the overlapping pairs found, up to
	// MaxReportedOverlaps; Truncated is true when more exist.
	Overlaps  []OverlapPair
	Truncated bool
	Escapee   *int // index of a box not contained in the domain, if any
	Shortage  int  // number of domain elements covered by no box
}

func (e *CoverageError) Error() string {
	switch {
	case len(e.Overlaps) > 0:
		var sb strings.Builder
		fmt.Fprintf(&sb, "grid: %d overlapping pair(s):", len(e.Overlaps))
		for _, p := range e.Overlaps {
			sb.WriteString(" [")
			sb.WriteString(p.String())
			sb.WriteByte(']')
		}
		if e.Truncated {
			sb.WriteString(" (more overlaps not shown)")
		}
		return sb.String()
	case e.Escapee != nil:
		return fmt.Sprintf("grid: box %d extends outside the domain", *e.Escapee)
	default:
		return fmt.Sprintf("grid: %d domain elements are uncovered", e.Shortage)
	}
}

// VerifyTiling checks that boxes are pairwise disjoint, contained in
// domain, and collectively cover it — the "mutually exclusive and
// complete" requirement the paper places on owned data. Empty boxes are
// ignored. Returns nil when the tiling is exact.
func VerifyTiling(domain Box, boxes []Box) error {
	return VerifyTilingOwned(domain, boxes, nil)
}

// VerifyTilingOwned is VerifyTiling with owner attribution: owners[i] is
// the rank that contributed boxes[i], carried into any CoverageError so
// callers need not reconstruct the mapping. A nil owners reports ranks as
// -1. The pairwise-disjointness check runs through a spatial index, one
// O(log n + k) overlap query per box instead of the historical pairwise
// sweep, so verification stays near O(n log n) for every layout shape
// (stacked slabs included, which degenerated the axis-0 sweep).
func VerifyTilingOwned(domain Box, boxes []Box, owners []int) error {
	vol := 0
	for i, b := range boxes {
		if b.Empty() {
			continue
		}
		if !domain.Contains(b) {
			i := i
			return &CoverageError{Escapee: &i}
		}
		vol += b.Volume()
	}
	ownerOf := func(i int) int {
		if owners == nil {
			return -1
		}
		return owners[i]
	}
	ix := NewIndex(boxes)
	var ce *CoverageError
	var hits []int
	for i, b := range boxes {
		if b.Empty() {
			continue
		}
		hits = ix.QueryAppend(hits[:0], b)
		for _, j := range hits {
			if j <= i { // each pair once, self excluded
				continue
			}
			if ce == nil {
				ce = &CoverageError{}
			}
			if len(ce.Overlaps) >= MaxReportedOverlaps {
				ce.Truncated = true
				return ce
			}
			region, _ := b.Intersect(boxes[j])
			ce.Overlaps = append(ce.Overlaps, OverlapPair{
				Boxes:  [2]int{i, j},
				Owners: [2]int{ownerOf(i), ownerOf(j)},
				Region: region,
			})
		}
	}
	if ce != nil {
		return ce
	}
	if vol != domain.Volume() {
		return &CoverageError{Shortage: domain.Volume() - vol}
	}
	return nil
}
