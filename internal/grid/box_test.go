package grid

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewBoxValidation(t *testing.T) {
	if _, err := NewBox([]int{0}, []int{1, 2}); err == nil {
		t.Error("mismatched lengths accepted")
	}
	if _, err := NewBox(nil, nil); err == nil {
		t.Error("zero-dimensional box accepted")
	}
	if _, err := NewBox([]int{0, 0, 0, 0}, []int{1, 1, 1, 1}); err == nil {
		t.Error("4D box accepted")
	}
	if _, err := NewBox([]int{0}, []int{-1}); err == nil {
		t.Error("negative extent accepted")
	}
	b, err := NewBox([]int{3, 4}, []int{5, 6})
	if err != nil {
		t.Fatalf("NewBox: %v", err)
	}
	if b.NDims != 2 || b.Offset != [3]int{3, 4, 0} || b.Dims != [3]int{5, 6, 1} {
		t.Errorf("unexpected box %+v", b)
	}
}

func TestVolume(t *testing.T) {
	cases := []struct {
		b    Box
		want int
	}{
		{Box1(5, 7), 7},
		{Box2(0, 0, 8, 8), 64},
		{Box3(1, 2, 3, 4, 5, 6), 120},
		{Box2(0, 0, 0, 9), 0},
	}
	for _, c := range cases {
		if got := c.b.Volume(); got != c.want {
			t.Errorf("%v.Volume() = %d, want %d", c.b, got, c.want)
		}
	}
}

func TestIntersect(t *testing.T) {
	a := Box2(0, 0, 8, 1)
	need := Box2(4, 0, 4, 4)
	got, ok := a.Intersect(need)
	if !ok || !got.Equal(Box2(4, 0, 4, 1)) {
		t.Errorf("Intersect = %v, %v; want (4,0)+(4,1), true", got, ok)
	}
	if _, ok := Box2(0, 0, 4, 4).Intersect(Box2(4, 4, 4, 4)); ok {
		t.Error("disjoint quadrants reported overlapping")
	}
	// Touching edges do not overlap.
	if Box1(0, 5).Overlaps(Box1(5, 5)) {
		t.Error("adjacent 1D boxes reported overlapping")
	}
}

func TestIntersectProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	domain := Box3(0, 0, 0, 20, 17, 9)
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := RandomBoxIn(r, domain)
		b := RandomBoxIn(r, domain)
		ab, okAB := a.Intersect(b)
		ba, okBA := b.Intersect(a)
		if okAB != okBA {
			return false
		}
		if okAB {
			// Commutative, contained in both, and idempotent.
			if !ab.Equal(ba) || !a.Contains(ab) || !b.Contains(ab) {
				return false
			}
			again, ok := ab.Intersect(ab)
			if !ok || !again.Equal(ab) {
				return false
			}
		} else {
			// Verify emptiness by brute force on a few sampled points.
			for i := 0; i < 10; i++ {
				p := [3]int{
					a.Offset[0] + rng.Intn(a.Dims[0]),
					a.Offset[1] + rng.Intn(a.Dims[1]),
					a.Offset[2] + rng.Intn(a.Dims[2]),
				}
				if b.ContainsPoint(p) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestContains(t *testing.T) {
	outer := Box2(0, 0, 8, 8)
	if !outer.Contains(Box2(4, 4, 4, 4)) {
		t.Error("quadrant not contained in its domain")
	}
	if outer.Contains(Box2(5, 5, 4, 4)) {
		t.Error("overflowing box reported contained")
	}
	if !outer.Contains(Box2(3, 3, 0, 0)) {
		t.Error("empty box should be trivially contained")
	}
}

func TestLocalTo(t *testing.T) {
	chunk := Box2(0, 4, 8, 1)
	overlap := Box2(4, 4, 4, 1)
	local := overlap.LocalTo(chunk)
	if !local.Equal(Box2(4, 0, 4, 1)) {
		t.Errorf("LocalTo = %v, want (4,0)+(4,1)", local)
	}
}

func TestBoundingBox(t *testing.T) {
	b, ok := BoundingBox([]Box{Box2(2, 3, 2, 2), Box2(5, 1, 1, 1), Box2(4, 4, 0, 5)})
	if !ok || !b.Equal(Box2(2, 1, 4, 4)) {
		t.Errorf("bounding = %v, ok=%v", b, ok)
	}
	if _, ok := BoundingBox(nil); ok {
		t.Error("empty input produced a box")
	}
	if _, ok := BoundingBox([]Box{Box1(3, 0)}); ok {
		t.Error("all-empty input produced a box")
	}
	single, ok := BoundingBox([]Box{Box3(1, 2, 3, 4, 5, 6)})
	if !ok || !single.Equal(Box3(1, 2, 3, 4, 5, 6)) {
		t.Errorf("single box = %v", single)
	}
}

func TestGrow(t *testing.T) {
	domain := Box2(0, 0, 10, 10)
	inner := Box2(4, 4, 2, 2)
	if got := inner.Grow(1, domain); !got.Equal(Box2(3, 3, 4, 4)) {
		t.Errorf("interior grow = %v", got)
	}
	corner := Box2(0, 0, 2, 2)
	if got := corner.Grow(3, domain); !got.Equal(Box2(0, 0, 5, 5)) {
		t.Errorf("corner grow = %v", got)
	}
	if got := domain.Grow(5, domain); !got.Equal(domain) {
		t.Errorf("domain grow = %v", got)
	}
	// Growing by zero is the identity.
	if got := inner.Grow(0, domain); !got.Equal(inner) {
		t.Errorf("zero grow = %v", got)
	}
}

func TestStringAndSlices(t *testing.T) {
	b := Box2(0, 4, 4, 4)
	if got := b.String(); got != "(0,4)+(4,4)" {
		t.Errorf("String() = %q", got)
	}
	if got := b.OffsetSlice(); len(got) != 2 || got[0] != 0 || got[1] != 4 {
		t.Errorf("OffsetSlice() = %v", got)
	}
	if got := b.DimsSlice(); len(got) != 2 || got[0] != 4 || got[1] != 4 {
		t.Errorf("DimsSlice() = %v", got)
	}
}
