// Package grid provides the integer-lattice geometry used throughout the
// DDR library: axis-aligned boxes in 1, 2, or 3 dimensions, intersection
// tests, and the domain decompositions that the paper's use cases rely on
// (slabs, near-cube bricks, and round-robin slice assignments).
//
// Conventions follow the paper: dimension vectors are ordered [w], [w,h],
// or [w,h,d]; offsets use the same order; the linear index of element
// (x,y,z) in a w×h×d array is ((z*h)+y)*w + x.
package grid

import (
	"fmt"
	"strings"
)

// MaxDims is the maximum number of spatial dimensions supported (the DDR
// paper supports 1D, 2D, and 3D arrays).
const MaxDims = 3

// Box is an axis-aligned region of an N-dimensional integer lattice.
// Offset is the position of the box's low corner within the overall
// domain and Dims is the box's extent along each axis. Only the first
// NDims entries of each array are meaningful; the rest must be zero for
// Offset and one for Dims so that volume computations stay correct.
type Box struct {
	NDims  int
	Offset [MaxDims]int
	Dims   [MaxDims]int
}

// NewBox builds a Box from offset and dimension slices of equal length
// (1 to MaxDims entries). Unused trailing dimensions are normalized to
// offset 0 and extent 1.
func NewBox(offset, dims []int) (Box, error) {
	if len(offset) != len(dims) {
		return Box{}, fmt.Errorf("grid: offset has %d entries but dims has %d", len(offset), len(dims))
	}
	if len(dims) < 1 || len(dims) > MaxDims {
		return Box{}, fmt.Errorf("grid: dimensionality %d out of range [1,%d]", len(dims), MaxDims)
	}
	b := Box{NDims: len(dims)}
	for i := range b.Dims {
		b.Dims[i] = 1
	}
	for i, d := range dims {
		if d < 0 {
			return Box{}, fmt.Errorf("grid: negative extent %d on axis %d", d, i)
		}
		b.Dims[i] = d
		b.Offset[i] = offset[i]
	}
	return b, nil
}

// MustBox is NewBox for statically correct literals; it panics on error.
func MustBox(offset, dims []int) Box {
	b, err := NewBox(offset, dims)
	if err != nil {
		panic(err)
	}
	return b
}

// Box1 returns a 1D box covering [off, off+w).
func Box1(off, w int) Box { return MustBox([]int{off}, []int{w}) }

// Box2 returns a 2D box with low corner (ox,oy) and extent w×h.
func Box2(ox, oy, w, h int) Box { return MustBox([]int{ox, oy}, []int{w, h}) }

// Box3 returns a 3D box with low corner (ox,oy,oz) and extent w×h×d.
func Box3(ox, oy, oz, w, h, d int) Box { return MustBox([]int{ox, oy, oz}, []int{w, h, d}) }

// Volume reports the number of lattice elements contained in the box.
func (b Box) Volume() int {
	v := 1
	for i := 0; i < b.NDims; i++ {
		v *= b.Dims[i]
	}
	return v
}

// Empty reports whether the box contains no elements.
func (b Box) Empty() bool { return b.Volume() == 0 }

// End returns the exclusive high corner along axis i.
func (b Box) End(i int) int { return b.Offset[i] + b.Dims[i] }

// Contains reports whether every element of inner lies within b.
func (b Box) Contains(inner Box) bool {
	if inner.Empty() {
		return true
	}
	for i := 0; i < max(b.NDims, inner.NDims); i++ {
		if inner.Offset[i] < b.Offset[i] || inner.End(i) > b.End(i) {
			return false
		}
	}
	return true
}

// ContainsPoint reports whether the lattice point p (NDims entries used)
// lies within b.
func (b Box) ContainsPoint(p [MaxDims]int) bool {
	for i := 0; i < b.NDims; i++ {
		if p[i] < b.Offset[i] || p[i] >= b.End(i) {
			return false
		}
	}
	return true
}

// Intersect returns the overlap of a and b and whether it is non-empty.
// The result has the dimensionality of a.
func (a Box) Intersect(b Box) (Box, bool) {
	out := Box{NDims: a.NDims}
	for i := range out.Dims {
		out.Dims[i] = 1
	}
	for i := 0; i < a.NDims; i++ {
		lo := max(a.Offset[i], b.Offset[i])
		hi := min(a.End(i), b.End(i))
		if hi <= lo {
			return Box{NDims: a.NDims}, false
		}
		out.Offset[i] = lo
		out.Dims[i] = hi - lo
	}
	return out, true
}

// Overlaps reports whether a and b share at least one element.
func (a Box) Overlaps(b Box) bool {
	_, ok := a.Intersect(b)
	return ok
}

// Equal reports whether a and b describe the same region with the same
// dimensionality.
func (a Box) Equal(b Box) bool {
	if a.NDims != b.NDims {
		return false
	}
	for i := 0; i < a.NDims; i++ {
		if a.Offset[i] != b.Offset[i] || a.Dims[i] != b.Dims[i] {
			return false
		}
	}
	return true
}

// LocalTo re-expresses b relative to the low corner of base, i.e. the
// returned box has base's corner subtracted from b's offset. It is used
// to address a sub-region within a chunk's private buffer.
func (b Box) LocalTo(base Box) Box {
	out := b
	for i := 0; i < b.NDims; i++ {
		out.Offset[i] = b.Offset[i] - base.Offset[i]
	}
	return out
}

// OffsetSlice returns the significant offset entries as a fresh slice.
func (b Box) OffsetSlice() []int {
	out := make([]int, b.NDims)
	copy(out, b.Offset[:b.NDims])
	return out
}

// DimsSlice returns the significant extent entries as a fresh slice.
func (b Box) DimsSlice() []int {
	out := make([]int, b.NDims)
	copy(out, b.Dims[:b.NDims])
	return out
}

// BoundingBox returns the smallest box containing every non-empty input
// box (dimensionality taken from the first). ok is false when no
// non-empty boxes were given.
func BoundingBox(boxes []Box) (Box, bool) {
	var out Box
	found := false
	for _, b := range boxes {
		if b.Empty() {
			continue
		}
		if !found {
			out = b
			found = true
			continue
		}
		for i := 0; i < out.NDims; i++ {
			lo := min(out.Offset[i], b.Offset[i])
			hi := max(out.End(i), b.End(i))
			out.Offset[i] = lo
			out.Dims[i] = hi - lo
		}
	}
	return out, found
}

// Grow expands the box by n cells in every direction along its
// significant axes, clamping the result to domain — the ghost-zone
// ("halo") region around a tile. n must be non-negative.
func (b Box) Grow(n int, domain Box) Box {
	out := b
	for i := 0; i < b.NDims; i++ {
		lo := max(b.Offset[i]-n, domain.Offset[i])
		hi := min(b.End(i)+n, domain.End(i))
		out.Offset[i] = lo
		out.Dims[i] = hi - lo
	}
	return out
}

// String renders the box as "offset+dims", e.g. "(0,4)+(4,4)".
func (b Box) String() string {
	var sb strings.Builder
	sb.WriteByte('(')
	for i := 0; i < b.NDims; i++ {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "%d", b.Offset[i])
	}
	sb.WriteString(")+(")
	for i := 0; i < b.NDims; i++ {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "%d", b.Dims[i])
	}
	sb.WriteByte(')')
	return sb.String()
}
