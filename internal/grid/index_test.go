package grid

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// bruteQuery is the reference the index must agree with exactly.
func bruteQuery(boxes []Box, q Box) []int {
	var out []int
	for i, b := range boxes {
		if !b.Empty() && q.Overlaps(b) {
			out = append(out, i)
		}
	}
	return out
}

func sameInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestIndexMatchesBruteForce(t *testing.T) {
	f := func(seed int64, parts uint8, queries uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		nd := 1 + rng.Intn(3)
		dims := make([]int, nd)
		offs := make([]int, nd)
		for i := range dims {
			dims[i] = 4 + rng.Intn(20)
			offs[i] = rng.Intn(9) - 4
		}
		domain := MustBox(offs, dims)
		boxes := RandomTiling(rng, domain, 1+int(parts%64))
		// Mix in a few empty and escaping boxes so the index sees the
		// irregular populations VerifyTiling feeds it.
		empty := domain
		empty.Dims[0] = 0
		boxes = append(boxes, empty, domain.Grow(2, MustBox(offs, dims)))
		ix := NewIndex(boxes)
		for q := 0; q < 1+int(queries%16); q++ {
			query := RandomBoxIn(rng, domain)
			if rng.Intn(3) == 0 {
				query.Offset[0] -= 3 // partially outside
			}
			if !sameInts(ix.Query(query), bruteQuery(boxes, query)) {
				t.Logf("seed %d query %v: %v != %v", seed, query, ix.Query(query), bruteQuery(boxes, query))
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestIndexLargePopulation(t *testing.T) {
	// A population big enough to exercise several internal levels.
	domain := Box3(0, 0, 0, 64, 64, 64)
	boxes := Bricks3D(domain, 16, 16, 16) // 4096 bricks
	ix := NewIndex(boxes)
	if ix.Len() != len(boxes) {
		t.Fatalf("Len %d, want %d", ix.Len(), len(boxes))
	}
	rng := rand.New(rand.NewSource(42))
	var scratch []int
	for q := 0; q < 200; q++ {
		query := RandomBoxIn(rng, domain)
		scratch = ix.QueryAppend(scratch[:0], query)
		want := bruteQuery(boxes, query)
		if !sameInts(scratch, want) {
			t.Fatalf("query %v: got %d hits, want %d", query, len(scratch), len(want))
		}
		if !sort.IntsAreSorted(scratch) {
			t.Fatalf("query %v results not ascending: %v", query, scratch)
		}
	}
}

func TestIndexEmptyAndDegenerate(t *testing.T) {
	if got := NewIndex(nil).Query(Box1(0, 10)); len(got) != 0 {
		t.Errorf("empty index returned %v", got)
	}
	only := []Box{Box1(0, 0)} // a single empty box
	if got := NewIndex(only).Query(Box1(0, 10)); len(got) != 0 {
		t.Errorf("index of empty boxes returned %v", got)
	}
	ix := NewIndex([]Box{Box1(2, 3)})
	if got := ix.Query(Box1(0, 0)); len(got) != 0 {
		t.Errorf("empty query returned %v", got)
	}
	if got := ix.Query(Box1(4, 2)); !sameInts(got, []int{0}) {
		t.Errorf("overlap query returned %v", got)
	}
}

func TestVerifyTilingReportsAllPairsBounded(t *testing.T) {
	// Twelve identical boxes: 66 overlapping pairs, reported capped.
	boxes := make([]Box, 12)
	owners := make([]int, 12)
	for i := range boxes {
		boxes[i] = Box2(0, 0, 4, 4)
		owners[i] = i * 10
	}
	err := VerifyTilingOwned(Box2(0, 0, 4, 4), boxes, owners)
	ce, ok := err.(*CoverageError)
	if !ok {
		t.Fatalf("expected CoverageError, got %v", err)
	}
	if len(ce.Overlaps) != MaxReportedOverlaps || !ce.Truncated {
		t.Fatalf("got %d pairs (truncated=%v), want %d truncated",
			len(ce.Overlaps), ce.Truncated, MaxReportedOverlaps)
	}
	for _, p := range ce.Overlaps {
		if p.Owners[0] != p.Boxes[0]*10 || p.Owners[1] != p.Boxes[1]*10 {
			t.Errorf("owner attribution wrong: %+v", p)
		}
	}
}

func TestVerifyTilingStackedSlabs(t *testing.T) {
	// Stacked horizontal slabs share the full axis-0 range — the layout
	// that degenerated the old axis-0 sweep to quadratic. Verify both the
	// clean and one-overlap variants at a size that would be felt if the
	// check regressed to O(n^2) element-wise work.
	domain := Box2(0, 0, 4, 4096)
	slabs := Slabs(domain, 1, 4096)
	if err := VerifyTiling(domain, slabs); err != nil {
		t.Fatal(err)
	}
	slabs[100].Dims[1]++ // now overlaps slab 101
	err := VerifyTiling(domain, slabs)
	ce, ok := err.(*CoverageError)
	if !ok || len(ce.Overlaps) == 0 {
		t.Fatalf("overlap not detected: %v", err)
	}
	if ce.Overlaps[0].Boxes != [2]int{100, 101} {
		t.Errorf("wrong pair: %+v", ce.Overlaps[0])
	}
}
