package grid_test

import (
	"fmt"

	"ddr/internal/grid"
)

// ExampleSlabs shows the slab decomposition the paper's LBM simulation
// uses: horizontal slices so each rank talks to at most two neighbors.
func ExampleSlabs() {
	domain := grid.Box2(0, 0, 8, 10)
	for i, s := range grid.Slabs(domain, 1, 3) {
		fmt.Printf("rank %d: %v\n", i, s)
	}
	// Output:
	// rank 0: (0,0)+(8,4)
	// rank 1: (0,4)+(8,3)
	// rank 2: (0,7)+(8,3)
}

// ExampleFactor3 shows the near-cube factorizations behind the paper's
// 3^3..6^3 process counts.
func ExampleFactor3() {
	for _, p := range []int{27, 64, 12} {
		x, y, z := grid.Factor3(p)
		fmt.Printf("%d = %dx%dx%d\n", p, x, y, z)
	}
	// Output:
	// 27 = 3x3x3
	// 64 = 4x4x4
	// 12 = 2x2x3
}

// ExampleBox_Grow shows halo-region computation with domain clamping.
func ExampleBox_Grow() {
	domain := grid.Box2(0, 0, 10, 10)
	tile := grid.Box2(0, 4, 5, 3)
	fmt.Println(tile.Grow(1, domain))
	// Output:
	// (0,3)+(6,5)
}

// ExampleRCB decomposes for a rank count that does not factor nicely.
func ExampleRCB() {
	boxes, err := grid.RCB(grid.Box3(0, 0, 0, 8, 8, 8), 3)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	for i, b := range boxes {
		fmt.Printf("rank %d: %v (%d cells)\n", i, b, b.Volume())
	}
	// Output:
	// rank 0: (0,0,0)+(4,4,8) (128 cells)
	// rank 1: (0,4,0)+(4,4,8) (128 cells)
	// rank 2: (4,0,0)+(4,8,8) (256 cells)
}
