package grid

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSplitEven(t *testing.T) {
	got := SplitEven(10, 3)
	want := []int{0, 4, 7, 10}
	if len(got) != len(want) {
		t.Fatalf("SplitEven(10,3) = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("SplitEven(10,3) = %v, want %v", got, want)
		}
	}
	// Pieces differ by at most one element.
	f := func(n uint16, parts uint8) bool {
		p := int(parts%64) + 1
		s := SplitEven(int(n%4096), p)
		lo, hi := 1<<30, -1
		for i := 0; i < p; i++ {
			d := s[i+1] - s[i]
			lo, hi = min(lo, d), max(hi, d)
		}
		return s[0] == 0 && s[p] == int(n%4096) && hi-lo <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSlabsTile(t *testing.T) {
	domain := Box2(0, 0, 100, 37)
	for _, count := range []int{1, 2, 3, 5, 37} {
		slabs := Slabs(domain, 1, count)
		if len(slabs) != count {
			t.Fatalf("Slabs returned %d boxes, want %d", len(slabs), count)
		}
		if err := VerifyTiling(domain, slabs); err != nil {
			t.Errorf("Slabs(%d): %v", count, err)
		}
	}
}

func TestWeightedSlabs(t *testing.T) {
	domain := Box2(0, 0, 10, 100)
	// Equal weights degenerate to near-even slabs.
	even, err := WeightedSlabs(domain, 1, []float64{1, 1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyTiling(domain, even); err != nil {
		t.Fatal(err)
	}
	for _, s := range even {
		if s.Dims[1] != 25 {
			t.Errorf("even slab height %d", s.Dims[1])
		}
	}
	// A rank twice as slow gets half the rows of a fast one.
	skew, err := WeightedSlabs(domain, 1, []float64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyTiling(domain, skew); err != nil {
		t.Fatal(err)
	}
	if skew[0].Dims[1] <= skew[1].Dims[1] {
		t.Errorf("fast rank got %d rows, slow got %d", skew[0].Dims[1], skew[1].Dims[1])
	}
	if skew[0].Dims[1] != 66 && skew[0].Dims[1] != 67 {
		t.Errorf("fast rank rows %d, want ~67", skew[0].Dims[1])
	}
	// Extreme skew still yields at least one row each.
	extreme, err := WeightedSlabs(domain, 1, []float64{1, 1e9, 1e9, 1e9})
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyTiling(domain, extreme); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < 4; i++ {
		if extreme[i].Dims[1] < 1 {
			t.Errorf("slab %d starved", i)
		}
	}
	// Validation.
	if _, err := WeightedSlabs(domain, 1, nil); err == nil {
		t.Error("no weights accepted")
	}
	if _, err := WeightedSlabs(domain, 1, []float64{1, -1}); err == nil {
		t.Error("negative weight accepted")
	}
	if _, err := WeightedSlabs(domain, 5, []float64{1}); err == nil {
		t.Error("bad axis accepted")
	}
	if _, err := WeightedSlabs(Box2(0, 0, 10, 2), 1, []float64{1, 1, 1}); err == nil {
		t.Error("more slabs than cells accepted")
	}
}

func TestWeightedSlabsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(8)
		rows := n + rng.Intn(200)
		domain := Box2(0, rng.Intn(5), 7, rows)
		weights := make([]float64, n)
		for i := range weights {
			weights[i] = 0.1 + rng.Float64()*10
		}
		slabs, err := WeightedSlabs(domain, 1, weights)
		if err != nil {
			return false
		}
		return VerifyTiling(domain, slabs) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestFactor2(t *testing.T) {
	cases := []struct{ n, r, c int }{
		{1, 1, 1}, {4, 2, 2}, {6, 2, 3}, {12, 3, 4}, {32, 4, 8}, {7, 1, 7},
	}
	for _, c := range cases {
		r, col := Factor2(c.n)
		if r != c.r || col != c.c {
			t.Errorf("Factor2(%d) = %d,%d; want %d,%d", c.n, r, col, c.r, c.c)
		}
	}
}

func TestFactor3(t *testing.T) {
	cases := []struct{ n, x, y, z int }{
		{27, 3, 3, 3}, {64, 4, 4, 4}, {125, 5, 5, 5}, {216, 6, 6, 6},
		{8, 2, 2, 2}, {12, 2, 2, 3}, {1, 1, 1, 1}, {30, 2, 3, 5},
	}
	for _, c := range cases {
		x, y, z := Factor3(c.n)
		if x*y*z != c.n {
			t.Fatalf("Factor3(%d) = %d,%d,%d does not multiply back", c.n, x, y, z)
		}
		if x != c.x || y != c.y || z != c.z {
			t.Errorf("Factor3(%d) = %d,%d,%d; want %d,%d,%d", c.n, x, y, z, c.x, c.y, c.z)
		}
	}
}

func TestGrid2DTiles(t *testing.T) {
	domain := Box2(0, 0, 3238, 1295)
	rows, cols := Factor2(32)
	boxes := Grid2D(domain, rows, cols)
	if len(boxes) != 32 {
		t.Fatalf("Grid2D returned %d boxes", len(boxes))
	}
	if err := VerifyTiling(domain, boxes); err != nil {
		t.Error(err)
	}
}

func TestBricks3DTiles(t *testing.T) {
	domain := Box3(0, 0, 0, 64, 32, 64)
	for _, n := range []int{27, 64, 8} {
		x, y, z := Factor3(n)
		boxes := Bricks3D(domain, x, y, z)
		if err := VerifyTiling(domain, boxes); err != nil {
			t.Errorf("Bricks3D(%d): %v", n, err)
		}
	}
}

func TestRCBTiles(t *testing.T) {
	domain := Box3(0, 0, 0, 20, 16, 12)
	for _, n := range []int{1, 2, 3, 5, 7, 11, 27, 60} {
		boxes, err := RCB(domain, n)
		if err != nil {
			t.Fatalf("RCB(%d): %v", n, err)
		}
		if len(boxes) != n {
			t.Fatalf("RCB(%d) produced %d boxes", n, len(boxes))
		}
		if err := VerifyTiling(domain, boxes); err != nil {
			t.Errorf("RCB(%d): %v", n, err)
		}
		// Volumes must be balanced within a factor of ~2.5 for these sizes.
		lo, hi := domain.Volume(), 0
		for _, b := range boxes {
			lo, hi = min(lo, b.Volume()), max(hi, b.Volume())
		}
		if n > 1 && float64(hi)/float64(lo) > 2.5 {
			t.Errorf("RCB(%d): imbalance %d..%d", n, lo, hi)
		}
	}
}

func TestRCBBetterAspectThanBricksForPrimes(t *testing.T) {
	// For 7 parts Bricks3D degenerates to 1x1x7 slabs; RCB must produce
	// more compact boxes (smaller max aspect ratio).
	domain := Box3(0, 0, 0, 64, 64, 64)
	rcb, err := RCB(domain, 7)
	if err != nil {
		t.Fatal(err)
	}
	x, y, z := Factor3(7)
	bricks := Bricks3D(domain, x, y, z)
	aspect := func(boxes []Box) float64 {
		worst := 1.0
		for _, b := range boxes {
			lo, hi := b.Dims[0], b.Dims[0]
			for i := 1; i < 3; i++ {
				lo, hi = min(lo, b.Dims[i]), max(hi, b.Dims[i])
			}
			if a := float64(hi) / float64(lo); a > worst {
				worst = a
			}
		}
		return worst
	}
	if aspect(rcb) >= aspect(bricks) {
		t.Errorf("RCB aspect %.1f not better than brick aspect %.1f", aspect(rcb), aspect(bricks))
	}
}

func TestRCBValidation(t *testing.T) {
	if _, err := RCB(Box1(0, 4), 0); err == nil {
		t.Error("zero parts accepted")
	}
	if _, err := RCB(Box1(0, 3), 5); err == nil {
		t.Error("too many parts accepted")
	}
	// Exactly volume-many parts: every cell its own box.
	boxes, err := RCB(Box2(0, 0, 3, 2), 6)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyTiling(Box2(0, 0, 3, 2), boxes); err != nil {
		t.Error(err)
	}
}

func TestRCBProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		domain := Box3(rng.Intn(3), rng.Intn(3), rng.Intn(3),
			1+rng.Intn(15), 1+rng.Intn(15), 1+rng.Intn(15))
		n := 1 + rng.Intn(domain.Volume())
		if n > 64 {
			n = 64
		}
		boxes, err := RCB(domain, n)
		if err != nil {
			return false
		}
		return len(boxes) == n && VerifyTiling(domain, boxes) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestRoundRobinSlices(t *testing.T) {
	domain := Box3(0, 0, 0, 16, 8, 10)
	per := RoundRobinSlices(domain, 2, 4)
	var all []Box
	for r, chunks := range per {
		for i, c := range chunks {
			if c.Dims[2] != 1 {
				t.Errorf("rank %d chunk %d thickness %d, want 1", r, i, c.Dims[2])
			}
			if c.Offset[2]%4 != r {
				t.Errorf("slice %d assigned to rank %d, not round-robin", c.Offset[2], r)
			}
		}
		all = append(all, chunks...)
	}
	if err := VerifyTiling(domain, all); err != nil {
		t.Error(err)
	}
	// 10 slices over 4 ranks: ranks 0,1 get 3 slices; ranks 2,3 get 2.
	if len(per[0]) != 3 || len(per[1]) != 3 || len(per[2]) != 2 || len(per[3]) != 2 {
		t.Errorf("chunk counts %d,%d,%d,%d", len(per[0]), len(per[1]), len(per[2]), len(per[3]))
	}
}

func TestConsecutiveSlices(t *testing.T) {
	domain := Box3(0, 0, 0, 16, 8, 10)
	per := ConsecutiveSlices(domain, 2, 4)
	var all []Box
	for r, chunks := range per {
		if len(chunks) != 1 {
			t.Fatalf("rank %d owns %d chunks, want 1", r, len(chunks))
		}
		all = append(all, chunks...)
	}
	if err := VerifyTiling(domain, all); err != nil {
		t.Error(err)
	}
	// More ranks than slices: some ranks own nothing.
	per = ConsecutiveSlices(Box3(0, 0, 0, 4, 4, 2), 2, 5)
	owners := 0
	for _, chunks := range per {
		owners += len(chunks)
	}
	if owners != 2 {
		t.Errorf("2 slices over 5 ranks produced %d chunks", owners)
	}
}

func TestVerifyTilingDetectsErrors(t *testing.T) {
	domain := Box2(0, 0, 8, 8)
	if err := VerifyTiling(domain, []Box{Box2(0, 0, 8, 4), Box2(0, 4, 8, 4)}); err != nil {
		t.Errorf("valid tiling rejected: %v", err)
	}
	err := VerifyTiling(domain, []Box{Box2(0, 0, 8, 5), Box2(0, 4, 8, 4)})
	if ce, ok := err.(*CoverageError); !ok || len(ce.Overlaps) == 0 {
		t.Errorf("overlap not detected: %v", err)
	} else if p := ce.Overlaps[0]; p.Boxes != [2]int{0, 1} || p.Owners != [2]int{-1, -1} {
		t.Errorf("wrong pair attribution: %+v", p)
	}
	err = VerifyTilingOwned(domain, []Box{Box2(0, 0, 8, 5), Box2(0, 4, 8, 4)}, []int{3, 7})
	if ce, ok := err.(*CoverageError); !ok || len(ce.Overlaps) != 1 {
		t.Errorf("owned overlap not detected: %v", err)
	} else if p := ce.Overlaps[0]; p.Owners != [2]int{3, 7} || !p.Region.Equal(Box2(0, 4, 8, 1)) {
		t.Errorf("wrong owned pair: %+v", p)
	}
	err = VerifyTiling(domain, []Box{Box2(0, 0, 8, 4), Box2(0, 4, 9, 4)})
	if ce, ok := err.(*CoverageError); !ok || ce.Escapee == nil {
		t.Errorf("escapee not detected: %v", err)
	}
	err = VerifyTiling(domain, []Box{Box2(0, 0, 8, 4)})
	if ce, ok := err.(*CoverageError); !ok || ce.Shortage != 32 {
		t.Errorf("shortage not detected: %v", err)
	}
}

func TestRandomTilingAlwaysTiles(t *testing.T) {
	f := func(seed int64, parts uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		domain := Box3(0, 0, 0, 1+rng.Intn(12), 1+rng.Intn(12), 1+rng.Intn(12))
		n := int(parts%32) + 1
		boxes := RandomTiling(rng, domain, n)
		if err := VerifyTiling(domain, boxes); err != nil {
			t.Logf("seed %d parts %d: %v", seed, n, err)
			return false
		}
		want := n
		if domain.Volume() < want {
			want = domain.Volume()
		}
		return len(boxes) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestRandomBoxInStaysInside(t *testing.T) {
	domain := Box2(3, -2, 17, 9)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		b := RandomBoxIn(rng, domain)
		if b.Empty() || !domain.Contains(b) {
			t.Fatalf("RandomBoxIn produced %v outside %v", b, domain)
		}
	}
}
