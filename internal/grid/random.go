package grid

import "math/rand"

// RandomTiling splits domain into exactly parts pairwise-disjoint,
// collectively-complete boxes by recursive KD-style bisection using rng.
// It always succeeds when domain.Volume() >= parts; otherwise it returns
// fewer boxes (one per element). The result is suitable as a random
// "owned data" layout for redistribution tests.
func RandomTiling(rng *rand.Rand, domain Box, parts int) []Box {
	if parts <= 1 || domain.Volume() <= 1 {
		return []Box{domain}
	}
	if parts > domain.Volume() {
		parts = domain.Volume()
	}
	// Choose a splittable axis at random.
	axes := make([]int, 0, MaxDims)
	for i := 0; i < domain.NDims; i++ {
		if domain.Dims[i] > 1 {
			axes = append(axes, i)
		}
	}
	axis := axes[rng.Intn(len(axes))]

	// Split parts into two loads, then find a cut so each side has enough
	// volume for its load.
	leftParts := 1 + rng.Intn(parts-1)
	rightParts := parts - leftParts
	var cut int
	for tries := 0; ; tries++ {
		cut = 1 + rng.Intn(domain.Dims[axis]-1)
		left, right := domain, domain
		left.Dims[axis] = cut
		right.Offset[axis] += cut
		right.Dims[axis] -= cut
		if left.Volume() >= leftParts && right.Volume() >= rightParts {
			return append(
				RandomTiling(rng, left, leftParts),
				RandomTiling(rng, right, rightParts)...)
		}
		if tries > 64 {
			// Fall back to a proportional cut, which always admits both loads
			// when domain.Volume() >= parts.
			leftParts = parts / 2
			rightParts = parts - leftParts
			cut = domain.Dims[axis] * leftParts / parts
			if cut < 1 {
				cut = 1
			}
			if cut >= domain.Dims[axis] {
				cut = domain.Dims[axis] - 1
			}
			left, right = domain, domain
			left.Dims[axis] = cut
			right.Offset[axis] += cut
			right.Dims[axis] -= cut
			lp, rp := leftParts, rightParts
			if left.Volume() < lp {
				lp = left.Volume()
				rp = parts - lp
			}
			if right.Volume() < rp {
				rp = right.Volume()
				lp = parts - rp
			}
			return append(
				RandomTiling(rng, left, lp),
				RandomTiling(rng, right, rp)...)
		}
	}
}

// RandomBoxIn returns a uniformly random non-empty box contained in domain.
func RandomBoxIn(rng *rand.Rand, domain Box) Box {
	out := Box{NDims: domain.NDims}
	for i := range out.Dims {
		out.Dims[i] = 1
	}
	for i := 0; i < domain.NDims; i++ {
		w := 1 + rng.Intn(domain.Dims[i])
		out.Dims[i] = w
		out.Offset[i] = domain.Offset[i] + rng.Intn(domain.Dims[i]-w+1)
	}
	return out
}
