package grid

import (
	"math/rand"
	"testing"
)

// checkSubtract verifies the Subtract contract cell by cell: the result
// boxes are disjoint, lie inside a, avoid b, and together cover every
// cell of a outside b.
func checkSubtract(t *testing.T, a, b Box) {
	t.Helper()
	out := Subtract(a, b)
	if len(out) > 2*a.NDims {
		t.Fatalf("Subtract(%v, %v) produced %d boxes, max is %d", a, b, len(out), 2*a.NDims)
	}
	covered := map[[MaxDims]int]int{}
	for _, box := range out {
		if !a.Contains(box) {
			t.Fatalf("Subtract(%v, %v): piece %v escapes a", a, b, box)
		}
		if box.Overlaps(b) {
			t.Fatalf("Subtract(%v, %v): piece %v overlaps b", a, b, box)
		}
		forEachPoint(box, func(p [MaxDims]int) { covered[p]++ })
	}
	forEachPoint(a, func(p [MaxDims]int) {
		want := 1
		if b.ContainsPoint(p) {
			want = 0
		}
		if covered[p] != want {
			t.Fatalf("Subtract(%v, %v): cell %v covered %d times, want %d", a, b, p, covered[p], want)
		}
	})
}

func forEachPoint(b Box, f func(p [MaxDims]int)) {
	dims := [MaxDims]int{1, 1, 1}
	for i := 0; i < b.NDims; i++ {
		dims[i] = b.Dims[i]
	}
	for z := 0; z < dims[2]; z++ {
		for y := 0; y < dims[1]; y++ {
			for x := 0; x < dims[0]; x++ {
				f([MaxDims]int{b.Offset[0] + x, b.Offset[1] + y, b.Offset[2] + z})
			}
		}
	}
}

func TestSubtractCases(t *testing.T) {
	cases := []struct{ a, b Box }{
		{Box1(0, 8), Box1(2, 3)},                         // middle cut
		{Box1(0, 8), Box1(0, 8)},                         // full cover
		{Box1(0, 8), Box1(10, 2)},                        // disjoint
		{Box1(0, 8), Box1(-2, 4)},                        // left overhang
		{Box2(0, 0, 6, 6), Box2(2, 2, 2, 2)},             // hole
		{Box2(0, 0, 6, 6), Box2(4, 4, 8, 8)},             // corner
		{Box3(0, 0, 0, 4, 4, 4), Box3(1, 1, 1, 2, 2, 2)}, // 3D hole
		{Box3(0, 0, 0, 4, 4, 4), Box3(0, 0, 2, 4, 4, 4)}, // z slab
	}
	for _, tc := range cases {
		checkSubtract(t, tc.a, tc.b)
	}
	if got := Subtract(Box1(0, 8), Box1(0, 8)); len(got) != 0 {
		t.Fatalf("full cover left %v", got)
	}
	if got := Subtract(Box1(0, 8), Box1(9, 2)); len(got) != 1 || !got[0].Equal(Box1(0, 8)) {
		t.Fatalf("disjoint subtract = %v, want the original box", got)
	}
}

func TestSubtractRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		nd := 1 + rng.Intn(3)
		randBox := func() Box {
			off := make([]int, nd)
			dims := make([]int, nd)
			for d := 0; d < nd; d++ {
				off[d] = rng.Intn(9) - 4
				dims[d] = 1 + rng.Intn(6)
			}
			return MustBox(off, dims)
		}
		checkSubtract(t, randBox(), randBox())
	}
}

func TestSubtractAll(t *testing.T) {
	regions := []Box{Box1(0, 4), Box1(6, 4)}
	out := SubtractAll(regions, Box1(2, 6))
	// [0,4) minus [2,8) -> [0,2); [6,10) minus [2,8) -> [8,10).
	if len(out) != 2 || !out[0].Equal(Box1(0, 2)) || !out[1].Equal(Box1(8, 2)) {
		t.Fatalf("SubtractAll = %v", out)
	}
}
