package fielddata

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFloat32RoundTrip(t *testing.T) {
	in := []float32{0, 1.5, -2.25, float32(math.Inf(1)), math.MaxFloat32}
	got := BytesFloat32(Float32Bytes(in))
	for i := range in {
		if got[i] != in[i] {
			t.Errorf("[%d] = %g, want %g", i, got[i], in[i])
		}
	}
	// NaN survives by bit pattern.
	nan := BytesFloat32(Float32Bytes([]float32{float32(math.NaN())}))
	if !math.IsNaN(float64(nan[0])) {
		t.Error("NaN lost")
	}
}

func TestFloat64RoundTrip(t *testing.T) {
	f := func(vals []float64) bool {
		got := BytesFloat64(Float64Bytes(vals))
		if len(got) != len(vals) {
			return false
		}
		for i := range vals {
			if got[i] != vals[i] && !(math.IsNaN(got[i]) && math.IsNaN(vals[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIntRoundTrips(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	u16 := make([]uint16, 100)
	u32 := make([]uint32, 100)
	i32 := make([]int32, 100)
	for i := range u16 {
		u16[i] = uint16(rng.Uint32())
		u32[i] = rng.Uint32()
		i32[i] = int32(rng.Uint32())
	}
	for i, got := range BytesUint16(Uint16Bytes(u16)) {
		if got != u16[i] {
			t.Fatalf("uint16[%d]", i)
		}
	}
	for i, got := range BytesUint32(Uint32Bytes(u32)) {
		if got != u32[i] {
			t.Fatalf("uint32[%d]", i)
		}
	}
	for i, got := range BytesInt32(Int32Bytes(i32)) {
		if got != i32[i] {
			t.Fatalf("int32[%d]", i)
		}
	}
}

func TestCopiesNotViews(t *testing.T) {
	in := []float32{1, 2}
	b := Float32Bytes(in)
	in[0] = 99
	if BytesFloat32(b)[0] != 1 {
		t.Error("Float32Bytes aliases its input")
	}
}

func TestTrailingBytesIgnored(t *testing.T) {
	if got := BytesFloat32([]byte{0, 0, 0, 0, 7}); len(got) != 1 {
		t.Errorf("len = %d", len(got))
	}
	if got := BytesUint16([]byte{1}); len(got) != 0 {
		t.Errorf("len = %d", len(got))
	}
}
