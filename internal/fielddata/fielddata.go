// Package fielddata converts between typed numeric slices and the
// little-endian byte buffers the DDR library and the message-passing
// runtime move around. All conversions copy; buffers returned by one
// function are safe to mutate without affecting the input.
package fielddata

import (
	"encoding/binary"
	"math"
)

// Float32Bytes serializes vals little-endian.
func Float32Bytes(vals []float32) []byte {
	out := make([]byte, 4*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint32(out[4*i:], math.Float32bits(v))
	}
	return out
}

// BytesFloat32 deserializes a little-endian float32 buffer. The byte
// length must be a multiple of 4; trailing bytes are ignored.
func BytesFloat32(b []byte) []float32 {
	out := make([]float32, len(b)/4)
	for i := range out {
		out[i] = math.Float32frombits(binary.LittleEndian.Uint32(b[4*i:]))
	}
	return out
}

// Float64Bytes serializes vals little-endian.
func Float64Bytes(vals []float64) []byte {
	out := make([]byte, 8*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint64(out[8*i:], math.Float64bits(v))
	}
	return out
}

// BytesFloat64 deserializes a little-endian float64 buffer.
func BytesFloat64(b []byte) []float64 {
	out := make([]float64, len(b)/8)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return out
}

// Uint16Bytes serializes vals little-endian.
func Uint16Bytes(vals []uint16) []byte {
	out := make([]byte, 2*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint16(out[2*i:], v)
	}
	return out
}

// BytesUint16 deserializes a little-endian uint16 buffer.
func BytesUint16(b []byte) []uint16 {
	out := make([]uint16, len(b)/2)
	for i := range out {
		out[i] = binary.LittleEndian.Uint16(b[2*i:])
	}
	return out
}

// Uint32Bytes serializes vals little-endian.
func Uint32Bytes(vals []uint32) []byte {
	out := make([]byte, 4*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint32(out[4*i:], v)
	}
	return out
}

// BytesUint32 deserializes a little-endian uint32 buffer.
func BytesUint32(b []byte) []uint32 {
	out := make([]uint32, len(b)/4)
	for i := range out {
		out[i] = binary.LittleEndian.Uint32(b[4*i:])
	}
	return out
}

// Int32Bytes serializes vals little-endian (two's complement).
func Int32Bytes(vals []int32) []byte {
	out := make([]byte, 4*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint32(out[4*i:], uint32(v))
	}
	return out
}

// BytesInt32 deserializes a little-endian int32 buffer.
func BytesInt32(b []byte) []int32 {
	out := make([]int32, len(b)/4)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(b[4*i:]))
	}
	return out
}
