// Package colormap converts scalar fields into raster images: the
// blue-white-red diverging map the paper uses for vorticity, grayscale
// ramps for CT data, and JPEG/PNG encoding of the result. JPEG output is
// what gives the paper's Table IV its ~99.5% data reduction.
package colormap

import (
	"fmt"
	"image"
	"image/color"
	"image/jpeg"
	"image/png"
	"io"
	"math"
	"os"
)

// Map converts a normalized value t in [0,1] to an RGB color. Values
// outside [0,1] are clamped.
type Map func(t float64) (r, g, b uint8)

func clamp01(t float64) float64 {
	switch {
	case math.IsNaN(t), t < 0:
		return 0
	case t > 1:
		return 1
	}
	return t
}

// BlueWhiteRed is the diverging map from the paper's LBM visualization:
// blue at 0, white at 0.5, red at 1.
func BlueWhiteRed(t float64) (uint8, uint8, uint8) {
	t = clamp01(t)
	if t < 0.5 {
		s := t * 2
		return uint8(255 * s), uint8(255 * s), 255
	}
	s := (t - 0.5) * 2
	return 255, uint8(255 * (1 - s)), uint8(255 * (1 - s))
}

// Grayscale maps t linearly to luminance.
func Grayscale(t float64) (uint8, uint8, uint8) {
	t = clamp01(t)
	v := uint8(255 * t)
	return v, v, v
}

// Heat is a simple black-red-yellow-white ramp used for CT renderings.
func Heat(t float64) (uint8, uint8, uint8) {
	t = clamp01(t)
	r := clamp01(t * 3)
	g := clamp01(t*3 - 1)
	b := clamp01(t*3 - 2)
	return uint8(255 * r), uint8(255 * g), uint8(255 * b)
}

// SymmetricRange returns (-m, +m) where m is the largest absolute value in
// vals — the natural normalization for a signed field such as vorticity
// under a diverging map. A zero field yields (-1, 1).
func SymmetricRange(vals []float32) (lo, hi float64) {
	var m float64
	for _, v := range vals {
		if a := math.Abs(float64(v)); a > m && !math.IsNaN(a) && !math.IsInf(a, 0) {
			m = a
		}
	}
	if m == 0 {
		m = 1
	}
	return -m, m
}

// FieldToImage renders a w×h row-major scalar field to an RGBA image,
// normalizing [lo,hi] to [0,1] through m.
func FieldToImage(vals []float32, w, h int, lo, hi float64, m Map) (*image.RGBA, error) {
	if len(vals) != w*h {
		return nil, fmt.Errorf("colormap: field has %d values for %dx%d", len(vals), w, h)
	}
	if hi <= lo {
		return nil, fmt.Errorf("colormap: empty range [%g,%g]", lo, hi)
	}
	img := image.NewRGBA(image.Rect(0, 0, w, h))
	scale := 1 / (hi - lo)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			r, g, b := m((float64(vals[y*w+x]) - lo) * scale)
			img.SetRGBA(x, y, color.RGBA{R: r, G: g, B: b, A: 255})
		}
	}
	return img, nil
}

// EncodeJPEG writes img as a JPEG at the given quality (1-100; the paper's
// analysis application uses standard compressed JPEG output).
func EncodeJPEG(w io.Writer, img image.Image, quality int) error {
	return jpeg.Encode(w, img, &jpeg.Options{Quality: quality})
}

// EncodePNG writes img as a PNG (used where lossless output is wanted).
func EncodePNG(w io.Writer, img image.Image) error {
	return png.Encode(w, img)
}

// WriteJPEGFile renders a JPEG file and returns its byte size.
func WriteJPEGFile(path string, img image.Image, quality int) (int64, error) {
	f, err := os.Create(path)
	if err != nil {
		return 0, err
	}
	if err := EncodeJPEG(f, img, quality); err != nil {
		f.Close()
		return 0, err
	}
	info, err := f.Stat()
	if err != nil {
		f.Close()
		return 0, err
	}
	return info.Size(), f.Close()
}
