package colormap

import (
	"fmt"
	"image"
	"image/color"
)

// Colorbar renders a vertical legend strip of the map (top = 1, bottom =
// 0), like the colormap swatch shown beside the paper's Figure 2.
func Colorbar(m Map, w, h int) (*image.RGBA, error) {
	if w < 1 || h < 2 {
		return nil, fmt.Errorf("colormap: colorbar needs at least 1x2 pixels, got %dx%d", w, h)
	}
	img := image.NewRGBA(image.Rect(0, 0, w, h))
	for y := 0; y < h; y++ {
		t := 1 - float64(y)/float64(h-1)
		r, g, b := m(t)
		for x := 0; x < w; x++ {
			img.SetRGBA(x, y, color.RGBA{R: r, G: g, B: b, A: 255})
		}
	}
	return img, nil
}

// WithLegend returns a new image consisting of img with a colorbar of the
// given map attached on the right (separated by a margin), mirroring the
// layout of the paper's Figure 2.
func WithLegend(img image.Image, m Map) (*image.RGBA, error) {
	b := img.Bounds()
	const margin = 8
	barW := max(8, b.Dx()/24)
	barH := b.Dy() * 3 / 4
	bar, err := Colorbar(m, barW, max(2, barH))
	if err != nil {
		return nil, err
	}
	out := image.NewRGBA(image.Rect(0, 0, b.Dx()+margin+barW+margin, b.Dy()))
	// Copy the main image.
	for y := 0; y < b.Dy(); y++ {
		for x := 0; x < b.Dx(); x++ {
			out.Set(x, y, img.At(b.Min.X+x, b.Min.Y+y))
		}
	}
	// Center the bar vertically.
	y0 := (b.Dy() - bar.Bounds().Dy()) / 2
	for y := 0; y < bar.Bounds().Dy(); y++ {
		for x := 0; x < barW; x++ {
			out.Set(b.Dx()+margin+x, y0+y, bar.RGBAAt(x, y))
		}
	}
	return out, nil
}
