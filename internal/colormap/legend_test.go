package colormap

import (
	"bytes"
	"image"
	"image/gif"
	"testing"
)

func TestEncodeAnimation(t *testing.T) {
	frames := make([]*image.RGBA, 3)
	for i := range frames {
		vals := make([]float32, 16*8)
		for j := range vals {
			vals[j] = float32(i) / 2
		}
		img, err := FieldToImage(vals, 16, 8, 0, 1, BlueWhiteRed)
		if err != nil {
			t.Fatal(err)
		}
		frames[i] = img
	}
	var buf bytes.Buffer
	if err := EncodeAnimation(&buf, frames, 10); err != nil {
		t.Fatal(err)
	}
	decoded, err := gif.DecodeAll(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(decoded.Image) != 3 {
		t.Errorf("decoded %d frames", len(decoded.Image))
	}
	if decoded.Delay[0] != 10 {
		t.Errorf("delay %d", decoded.Delay[0])
	}
	// Validation paths.
	if err := EncodeAnimation(&buf, nil, 10); err == nil {
		t.Error("empty animation accepted")
	}
	small := image.NewRGBA(image.Rect(0, 0, 2, 2))
	if err := EncodeAnimation(&buf, []*image.RGBA{frames[0], small}, 10); err == nil {
		t.Error("mismatched frame sizes accepted")
	}
	// Zero delay is clamped, not rejected.
	if err := EncodeAnimation(&buf, frames[:1], 0); err != nil {
		t.Errorf("zero delay: %v", err)
	}
}

func TestColorbar(t *testing.T) {
	bar, err := Colorbar(BlueWhiteRed, 4, 10)
	if err != nil {
		t.Fatal(err)
	}
	top := bar.RGBAAt(0, 0)
	bottom := bar.RGBAAt(0, 9)
	if top.R != 255 || top.G != 0 { // t=1 is red
		t.Errorf("top = %v, want red", top)
	}
	if bottom.B != 255 || bottom.R != 0 { // t=0 is blue
		t.Errorf("bottom = %v, want blue", bottom)
	}
	if _, err := Colorbar(Grayscale, 0, 10); err == nil {
		t.Error("zero width accepted")
	}
	if _, err := Colorbar(Grayscale, 4, 1); err == nil {
		t.Error("1-pixel height accepted")
	}
}

func TestWithLegend(t *testing.T) {
	base := image.NewRGBA(image.Rect(0, 0, 96, 48))
	out, err := WithLegend(base, BlueWhiteRed)
	if err != nil {
		t.Fatal(err)
	}
	if out.Bounds().Dx() <= 96 || out.Bounds().Dy() != 48 {
		t.Fatalf("bounds %v", out.Bounds())
	}
	// The legend column must contain a red pixel near its top and a blue
	// one near its bottom.
	barX := out.Bounds().Dx() - 10
	foundRed, foundBlue := false, false
	for y := 0; y < 48; y++ {
		c := out.RGBAAt(barX, y)
		if c.R == 255 && c.G == 0 && c.B == 0 {
			foundRed = true
		}
		if c.B == 255 && c.R == 0 && c.G == 0 {
			foundBlue = true
		}
	}
	if !foundRed || !foundBlue {
		t.Errorf("legend missing endpoints (red=%v blue=%v)", foundRed, foundBlue)
	}
}
