package colormap

import (
	"bytes"
	"image/jpeg"
	"image/png"
	"math"
	"math/rand"
	"path/filepath"
	"testing"
)

func TestBlueWhiteRedEndpoints(t *testing.T) {
	r, g, b := BlueWhiteRed(0)
	if r != 0 || g != 0 || b != 255 {
		t.Errorf("t=0: (%d,%d,%d), want blue", r, g, b)
	}
	r, g, b = BlueWhiteRed(0.5)
	if r != 255 || g != 255 || b != 255 {
		t.Errorf("t=0.5: (%d,%d,%d), want white", r, g, b)
	}
	r, g, b = BlueWhiteRed(1)
	if r != 255 || g != 0 || b != 0 {
		t.Errorf("t=1: (%d,%d,%d), want red", r, g, b)
	}
	// Clamping.
	r, g, b = BlueWhiteRed(-3)
	if b != 255 || r != 0 {
		t.Errorf("t=-3 not clamped: (%d,%d,%d)", r, g, b)
	}
	r, _, _ = BlueWhiteRed(7)
	if r != 255 {
		t.Errorf("t=7 not clamped: r=%d", r)
	}
	if r, g, b := BlueWhiteRed(math.NaN()); r != 0 || g != 0 || b != 255 {
		t.Errorf("NaN not clamped to 0: (%d,%d,%d)", r, g, b)
	}
}

func TestGrayscaleMonotone(t *testing.T) {
	prev := -1
	for i := 0; i <= 10; i++ {
		v, g, b := Grayscale(float64(i) / 10)
		if int(v) < prev {
			t.Errorf("grayscale not monotone at %d", i)
		}
		if v != g || v != b {
			t.Errorf("grayscale not gray at %d", i)
		}
		prev = int(v)
	}
}

func TestHeatRamp(t *testing.T) {
	r0, g0, b0 := Heat(0)
	if r0 != 0 || g0 != 0 || b0 != 0 {
		t.Errorf("heat(0) = (%d,%d,%d)", r0, g0, b0)
	}
	r1, g1, b1 := Heat(1)
	if r1 != 255 || g1 != 255 || b1 != 255 {
		t.Errorf("heat(1) = (%d,%d,%d)", r1, g1, b1)
	}
	rm, gm, bm := Heat(0.4)
	if rm != 255 || gm == 0 && bm != 0 {
		t.Errorf("heat(0.4) = (%d,%d,%d)", rm, gm, bm)
	}
}

func TestSymmetricRange(t *testing.T) {
	lo, hi := SymmetricRange([]float32{-0.25, 0.5, 0.1})
	if lo != -0.5 || hi != 0.5 {
		t.Errorf("range = [%g,%g]", lo, hi)
	}
	lo, hi = SymmetricRange(nil)
	if lo != -1 || hi != 1 {
		t.Errorf("empty range = [%g,%g]", lo, hi)
	}
	lo, hi = SymmetricRange([]float32{float32(math.NaN()), 2})
	if lo != -2 || hi != 2 {
		t.Errorf("NaN range = [%g,%g]", lo, hi)
	}
}

func TestFieldToImage(t *testing.T) {
	vals := []float32{-1, 0, 0, 1, -1, 1}
	img, err := FieldToImage(vals, 2, 3, -1, 1, BlueWhiteRed)
	if err != nil {
		t.Fatal(err)
	}
	if img.Bounds().Dx() != 2 || img.Bounds().Dy() != 3 {
		t.Fatalf("bounds %v", img.Bounds())
	}
	c := img.RGBAAt(0, 0)
	if c.B != 255 || c.R != 0 {
		t.Errorf("(0,0) = %v, want blue", c)
	}
	c = img.RGBAAt(1, 1)
	if c.R != 255 || c.G != 0 {
		t.Errorf("(1,1) = %v, want red", c)
	}
	if _, err := FieldToImage(vals, 3, 3, -1, 1, BlueWhiteRed); err == nil {
		t.Error("size mismatch accepted")
	}
	if _, err := FieldToImage(vals, 2, 3, 1, 1, BlueWhiteRed); err == nil {
		t.Error("empty range accepted")
	}
}

func TestEncodeJPEGAndPNG(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	vals := make([]float32, 64*48)
	for i := range vals {
		vals[i] = rng.Float32()*2 - 1
	}
	img, err := FieldToImage(vals, 64, 48, -1, 1, BlueWhiteRed)
	if err != nil {
		t.Fatal(err)
	}
	var jbuf, pbuf bytes.Buffer
	if err := EncodeJPEG(&jbuf, img, 80); err != nil {
		t.Fatal(err)
	}
	if err := EncodePNG(&pbuf, img); err != nil {
		t.Fatal(err)
	}
	if _, err := jpeg.Decode(bytes.NewReader(jbuf.Bytes())); err != nil {
		t.Errorf("jpeg not decodable: %v", err)
	}
	if _, err := png.Decode(bytes.NewReader(pbuf.Bytes())); err != nil {
		t.Errorf("png not decodable: %v", err)
	}
	// A smooth field must compress far better than 4 bytes/pixel raw.
	smooth := make([]float32, 64*48)
	for y := 0; y < 48; y++ {
		for x := 0; x < 64; x++ {
			smooth[y*64+x] = float32(math.Sin(float64(x)/10) * math.Cos(float64(y)/10))
		}
	}
	simg, err := FieldToImage(smooth, 64, 48, -1, 1, BlueWhiteRed)
	if err != nil {
		t.Fatal(err)
	}
	var sbuf bytes.Buffer
	if err := EncodeJPEG(&sbuf, simg, 80); err != nil {
		t.Fatal(err)
	}
	raw := 64 * 48 * 4
	if sbuf.Len() >= raw {
		t.Errorf("smooth JPEG %d bytes not smaller than raw %d", sbuf.Len(), raw)
	}
}

func TestWriteJPEGFile(t *testing.T) {
	img, err := FieldToImage([]float32{0, 1, 0.5, 0.25}, 2, 2, 0, 1, Grayscale)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "f.jpg")
	n, err := WriteJPEGFile(path, img, 90)
	if err != nil {
		t.Fatal(err)
	}
	if n <= 0 {
		t.Errorf("size %d", n)
	}
	if _, err := WriteJPEGFile(filepath.Join(t.TempDir(), "no/such/dir/f.jpg"), img, 90); err == nil {
		t.Error("bad path accepted")
	}
}
