package colormap

import (
	"fmt"
	"image"
	"image/color/palette"
	"image/draw"
	"image/gif"
	"io"
)

// EncodeAnimation writes frames as an animated GIF with the given
// per-frame delay in hundredths of a second — the quick-look artifact for
// streamed time series (one file instead of hundreds of JPEGs). Frames
// are palettized to the standard Plan9 palette with Floyd–Steinberg
// dithering. All frames must share one size.
func EncodeAnimation(w io.Writer, frames []*image.RGBA, delay int) error {
	if len(frames) == 0 {
		return fmt.Errorf("colormap: no frames to animate")
	}
	if delay < 1 {
		delay = 1
	}
	bounds := frames[0].Bounds()
	anim := &gif.GIF{LoopCount: 0}
	for i, f := range frames {
		if f.Bounds() != bounds {
			return fmt.Errorf("colormap: frame %d bounds %v differ from %v", i, f.Bounds(), bounds)
		}
		pal := image.NewPaletted(bounds, palette.Plan9)
		draw.FloydSteinberg.Draw(pal, bounds, f, bounds.Min)
		anim.Image = append(anim.Image, pal)
		anim.Delay = append(anim.Delay, delay)
	}
	return gif.EncodeAll(w, anim)
}
