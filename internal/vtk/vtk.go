// Package vtk writes legacy VTK structured-points files, the lingua
// franca of ParaView and VisIt. The paper's introduction motivates DDR
// with exactly this hand-off: data arrives in a layout the rendering
// package cannot ingest directly and must be converted. Together with
// bov and the stackconvert tool this closes the loop — TIFF stacks or
// simulation fields become directly loadable volumes.
package vtk

import (
	"bufio"
	"fmt"
	"io"
	"os"

	"ddr/internal/bov"
)

// ScalarType identifies the VTK scalar type of the payload.
type ScalarType string

// Supported scalar types (legacy VTK names).
const (
	UnsignedChar  ScalarType = "unsigned_char"
	UnsignedShort ScalarType = "unsigned_short"
	Float         ScalarType = "float"
)

// elemSize returns the byte size of one scalar.
func (t ScalarType) elemSize() int {
	switch t {
	case UnsignedChar:
		return 1
	case UnsignedShort:
		return 2
	case Float:
		return 4
	}
	return 0
}

// WriteStructuredPoints writes a legacy binary VTK structured-points
// dataset: dims is the volume extent, name labels the scalar array, and
// data holds dims[0]*dims[1]*dims[2] samples of typ in little-endian byte
// order (the in-memory convention everywhere in this repository). Legacy
// VTK binary payloads are big-endian; samples are byte-swapped on the
// way out.
func WriteStructuredPoints(w io.Writer, name string, dims [3]int, typ ScalarType, data []byte) error {
	es := typ.elemSize()
	if es == 0 {
		return fmt.Errorf("vtk: unsupported scalar type %q", typ)
	}
	n := dims[0] * dims[1] * dims[2]
	if dims[0] < 1 || dims[1] < 1 || dims[2] < 1 {
		return fmt.Errorf("vtk: invalid dimensions %v", dims)
	}
	if len(data) != n*es {
		return fmt.Errorf("vtk: %d data bytes for %d %s samples", len(data), n, typ)
	}
	if name == "" {
		name = "scalars"
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# vtk DataFile Version 3.0\n")
	fmt.Fprintf(bw, "ddr volume export\n")
	fmt.Fprintf(bw, "BINARY\n")
	fmt.Fprintf(bw, "DATASET STRUCTURED_POINTS\n")
	fmt.Fprintf(bw, "DIMENSIONS %d %d %d\n", dims[0], dims[1], dims[2])
	fmt.Fprintf(bw, "ORIGIN 0 0 0\n")
	fmt.Fprintf(bw, "SPACING 1 1 1\n")
	fmt.Fprintf(bw, "POINT_DATA %d\n", n)
	fmt.Fprintf(bw, "SCALARS %s %s 1\n", name, typ)
	fmt.Fprintf(bw, "LOOKUP_TABLE default\n")
	if es == 1 {
		if _, err := bw.Write(data); err != nil {
			return err
		}
	} else {
		// Swap each sample to big-endian.
		tmp := make([]byte, es)
		for i := 0; i < len(data); i += es {
			for b := 0; b < es; b++ {
				tmp[b] = data[i+es-1-b]
			}
			if _, err := bw.Write(tmp); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// scalarTypeFor guesses the VTK scalar type from a bov element size.
func scalarTypeFor(elemSize int) (ScalarType, error) {
	switch elemSize {
	case 1:
		return UnsignedChar, nil
	case 2:
		return UnsignedShort, nil
	case 4:
		return Float, nil
	}
	return "", fmt.Errorf("vtk: no scalar type for %d-byte elements", elemSize)
}

// ExportBOV converts a bov volume file into a legacy VTK structured-points
// file. 4-byte elements are exported as float (the convention of this
// repository's float32 fields).
func ExportBOV(bovPath, vtkPath, name string) error {
	v, err := bov.Open(bovPath)
	if err != nil {
		return err
	}
	defer v.Close()
	h := v.Header()
	typ, err := scalarTypeFor(h.ElemSize)
	if err != nil {
		return err
	}
	data, err := v.ReadBox(h.Domain())
	if err != nil {
		return err
	}
	f, err := os.Create(vtkPath)
	if err != nil {
		return err
	}
	if err := WriteStructuredPoints(f, name, h.Dims, typ, data); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
