package vtk

import (
	"bytes"
	"encoding/binary"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ddr/internal/bov"
	"ddr/internal/fielddata"
)

func TestWriteStructuredPointsHeader(t *testing.T) {
	var buf bytes.Buffer
	data := []byte{1, 2, 3, 4, 5, 6}
	if err := WriteStructuredPoints(&buf, "density", [3]int{3, 2, 1}, UnsignedChar, data); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# vtk DataFile Version 3.0",
		"BINARY",
		"DATASET STRUCTURED_POINTS",
		"DIMENSIONS 3 2 1",
		"POINT_DATA 6",
		"SCALARS density unsigned_char 1",
		"LOOKUP_TABLE default",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in header", want)
		}
	}
	// The payload is the last 6 bytes, unswapped for 1-byte samples.
	if !bytes.Equal(buf.Bytes()[buf.Len()-6:], data) {
		t.Error("payload mismatch")
	}
}

func TestWriteStructuredPointsByteSwap(t *testing.T) {
	var buf bytes.Buffer
	// One float32 sample: 1.0 little-endian.
	data := make([]byte, 4)
	binary.LittleEndian.PutUint32(data, math.Float32bits(1.0))
	if err := WriteStructuredPoints(&buf, "f", [3]int{1, 1, 1}, Float, data); err != nil {
		t.Fatal(err)
	}
	payload := buf.Bytes()[buf.Len()-4:]
	if got := binary.BigEndian.Uint32(payload); math.Float32frombits(got) != 1.0 {
		t.Errorf("payload not big-endian: % x", payload)
	}
}

func TestWriteStructuredPointsValidation(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteStructuredPoints(&buf, "x", [3]int{2, 2, 1}, UnsignedChar, []byte{1}); err == nil {
		t.Error("short data accepted")
	}
	if err := WriteStructuredPoints(&buf, "x", [3]int{0, 2, 1}, UnsignedChar, nil); err == nil {
		t.Error("zero dimension accepted")
	}
	if err := WriteStructuredPoints(&buf, "x", [3]int{1, 1, 1}, ScalarType("double"), make([]byte, 8)); err == nil {
		t.Error("unsupported type accepted")
	}
	// Empty name defaults.
	if err := WriteStructuredPoints(&buf, "", [3]int{1, 1, 1}, UnsignedChar, []byte{7}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "SCALARS scalars") {
		t.Error("default name missing")
	}
}

func TestExportBOV(t *testing.T) {
	dir := t.TempDir()
	bovPath := filepath.Join(dir, "v.bov")
	h := bov.Header{Dims: [3]int{4, 3, 2}, ElemSize: 4}
	v, err := bov.Create(bovPath, h)
	if err != nil {
		t.Fatal(err)
	}
	vals := make([]float32, 4*3*2)
	for i := range vals {
		vals[i] = float32(i) / 10
	}
	if err := v.WriteBox(h.Domain(), fielddata.Float32Bytes(vals)); err != nil {
		t.Fatal(err)
	}
	if err := v.Close(); err != nil {
		t.Fatal(err)
	}

	vtkPath := filepath.Join(dir, "v.vtk")
	if err := ExportBOV(bovPath, vtkPath, "field"); err != nil {
		t.Fatal(err)
	}
	out, err := readFile(vtkPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(out), "SCALARS field float 1") {
		t.Error("scalar declaration missing")
	}
	// Verify the last sample survives the byte swap.
	last := out[len(out)-4:]
	want := float32(23) / 10
	if got := math.Float32frombits(binary.BigEndian.Uint32(last)); got != want {
		t.Errorf("last sample %g, want %g", got, want)
	}

	if err := ExportBOV(filepath.Join(dir, "missing.bov"), vtkPath, "x"); err == nil {
		t.Error("missing input accepted")
	}
	// Unsupported element size.
	bad := filepath.Join(dir, "bad.bov")
	vb, err := bov.Create(bad, bov.Header{Dims: [3]int{1, 1, 1}, ElemSize: 3})
	if err != nil {
		t.Fatal(err)
	}
	vb.Close()
	if err := ExportBOV(bad, vtkPath, "x"); err == nil {
		t.Error("3-byte elements accepted")
	}
}

func readFile(path string) ([]byte, error) {
	return os.ReadFile(path)
}
