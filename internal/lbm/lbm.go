// Package lbm implements the two-dimensional Lattice-Boltzmann (D2Q9)
// fluid solver used by the paper's in-transit streaming use case: flow in
// a channel past a barrier, slab-decomposed so each rank exchanges halo
// rows with at most two neighbors, with vorticity as the visualized
// variable of interest.
package lbm

import (
	"fmt"
	"math"
)

// D2Q9 lattice: direction vectors and weights. Direction 0 is rest.
var (
	ex = [9]int{0, 1, 0, -1, 0, 1, -1, -1, 1}
	ey = [9]int{0, 0, 1, 0, -1, 1, 1, -1, -1}
	wt = [9]float64{4.0 / 9, 1.0 / 9, 1.0 / 9, 1.0 / 9, 1.0 / 9, 1.0 / 36, 1.0 / 36, 1.0 / 36, 1.0 / 36}
	// opp[i] is the direction opposite to i, used for bounce-back.
	opp = [9]int{0, 3, 4, 1, 2, 7, 8, 5, 6}
)

// Params configures a simulation.
type Params struct {
	Width, Height int
	// Viscosity is the kinematic viscosity; the BGK relaxation time is
	// tau = 3*nu + 0.5.
	Viscosity float64
	// InletVelocity is the fixed +x flow speed imposed at the domain edges.
	InletVelocity float64
	// Barrier marks solid cells (global coordinates). Nil means open flow.
	Barrier func(x, y int) bool
}

func (p Params) validate() error {
	if p.Width < 3 || p.Height < 3 {
		return fmt.Errorf("lbm: domain %dx%d too small", p.Width, p.Height)
	}
	if p.Viscosity <= 0 {
		return fmt.Errorf("lbm: viscosity %f must be positive", p.Viscosity)
	}
	if math.Abs(p.InletVelocity) > 0.3 {
		return fmt.Errorf("lbm: inlet velocity %f exceeds the low-Mach validity range", p.InletVelocity)
	}
	return nil
}

// CylinderBarrier returns a Params.Barrier placing a solid circle of the
// given radius centred at (cx, cy) — the obstacle that sheds the vortex
// street the paper visualizes.
func CylinderBarrier(cx, cy, r int) func(x, y int) bool {
	r2 := r * r
	return func(x, y int) bool {
		dx, dy := x-cx, y-cy
		return dx*dx+dy*dy <= r2
	}
}

// UnionBarriers combines barriers: a cell is solid if any constituent
// marks it, for domains with multiple obstacles. Nil entries are skipped.
func UnionBarriers(barriers ...func(x, y int) bool) func(x, y int) bool {
	return func(x, y int) bool {
		for _, b := range barriers {
			if b != nil && b(x, y) {
				return true
			}
		}
		return false
	}
}

// Slab simulates rows [Y0, Y0+NY) of the global domain, with one ghost
// row above and below. A serial simulation is a single slab covering the
// whole height.
type Slab struct {
	P      Params
	Y0, NY int

	omega float64
	// f and fs ("f streamed") hold 9 distribution planes of (NY+2)*W cells;
	// row r of the plane is global row Y0-1+r.
	f, fs   [9][]float64
	barrier []bool // same geometry as one plane

	rho, ux, uy []float64 // last computed macroscopic fields, slab rows only
}

// NewSlab builds the slab simulator for rows [y0, y0+ny) and initializes
// all fluid to equilibrium at density 1 and the inlet velocity.
func NewSlab(p Params, y0, ny int) (*Slab, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	if y0 < 0 || ny < 1 || y0+ny > p.Height {
		return nil, fmt.Errorf("lbm: slab rows [%d,%d) outside domain height %d", y0, y0+ny, p.Height)
	}
	s := &Slab{P: p, Y0: y0, NY: ny, omega: 1.0 / (3*p.Viscosity + 0.5)}
	n := (ny + 2) * p.Width
	for i := range s.f {
		s.f[i] = make([]float64, n)
		s.fs[i] = make([]float64, n)
	}
	s.barrier = make([]bool, n)
	s.rho = make([]float64, ny*p.Width)
	s.ux = make([]float64, ny*p.Width)
	s.uy = make([]float64, ny*p.Width)

	for r := 0; r < ny+2; r++ {
		gy := y0 - 1 + r
		for x := 0; x < p.Width; x++ {
			idx := r*p.Width + x
			if p.Barrier != nil && gy >= 0 && gy < p.Height && p.Barrier(x, gy) {
				s.barrier[idx] = true
			}
			for i := 0; i < 9; i++ {
				s.f[i][idx] = equilibrium(i, 1.0, p.InletVelocity, 0)
			}
		}
	}
	return s, nil
}

// equilibrium returns the Maxwell-Boltzmann equilibrium distribution for
// direction i at density rho and velocity (ux, uy).
func equilibrium(i int, rho, ux, uy float64) float64 {
	eu := float64(ex[i])*ux + float64(ey[i])*uy
	u2 := ux*ux + uy*uy
	return wt[i] * rho * (1 + 3*eu + 4.5*eu*eu - 1.5*u2)
}

// Collide applies the BGK collision operator to every cell of the slab
// (ghost rows are not collided; neighbors provide theirs post-collision).
func (s *Slab) Collide() {
	w := s.P.Width
	for r := 1; r <= s.NY; r++ {
		for x := 0; x < w; x++ {
			idx := r*w + x
			if s.barrier[idx] {
				continue
			}
			var rho, mx, my float64
			for i := 0; i < 9; i++ {
				v := s.f[i][idx]
				rho += v
				mx += v * float64(ex[i])
				my += v * float64(ey[i])
			}
			ux, uy := mx/rho, my/rho
			for i := 0; i < 9; i++ {
				s.f[i][idx] += s.omega * (equilibrium(i, rho, ux, uy) - s.f[i][idx])
			}
			out := (r-1)*w + x
			s.rho[out], s.ux[out], s.uy[out] = rho, ux, uy
		}
	}
}

// haloFloats is the number of float64 values in one exchanged edge row
// (all 9 distribution planes).
func (s *Slab) haloFloats() int { return 9 * s.P.Width }

// EdgeRows returns copies of the slab's post-collision boundary rows:
// low is global row Y0 (to send to the neighbor below) and high is global
// row Y0+NY-1 (to send to the neighbor above). Layout: 9 planes of W.
func (s *Slab) EdgeRows() (low, high []float64) {
	w := s.P.Width
	low = make([]float64, s.haloFloats())
	high = make([]float64, s.haloFloats())
	for i := 0; i < 9; i++ {
		copy(low[i*w:(i+1)*w], s.f[i][1*w:2*w])
		copy(high[i*w:(i+1)*w], s.f[i][s.NY*w:(s.NY+1)*w])
	}
	return low, high
}

// SetHalo installs neighbor edge rows into the ghost rows: low becomes
// global row Y0-1 and high becomes global row Y0+NY. A nil slice leaves
// the corresponding ghost row at its fixed equilibrium values, which is
// the correct behaviour at the global top and bottom edges (they are
// overwritten by the boundary condition after streaming anyway).
func (s *Slab) SetHalo(low, high []float64) error {
	w := s.P.Width
	if low != nil {
		if len(low) != s.haloFloats() {
			return fmt.Errorf("lbm: low halo has %d floats, want %d", len(low), s.haloFloats())
		}
		for i := 0; i < 9; i++ {
			copy(s.f[i][0:w], low[i*w:(i+1)*w])
		}
	}
	if high != nil {
		if len(high) != s.haloFloats() {
			return fmt.Errorf("lbm: high halo has %d floats, want %d", len(high), s.haloFloats())
		}
		for i := 0; i < 9; i++ {
			copy(s.f[i][(s.NY+1)*w:(s.NY+2)*w], high[i*w:(i+1)*w])
		}
	}
	return nil
}

// Stream propagates post-collision distributions one lattice step and
// applies half-way bounce-back at barriers, then re-imposes the fixed
// equilibrium condition on the global domain edges.
func (s *Slab) Stream() {
	w := s.P.Width
	for i := 0; i < 9; i++ {
		for r := 1; r <= s.NY; r++ {
			for x := 0; x < w; x++ {
				idx := r*w + x
				sx, sy := x-ex[i], r-ey[i]
				if sx < 0 {
					sx = 0 // clamp; overwritten by the edge condition below
				}
				if sx >= w {
					sx = w - 1
				}
				src := sy*w + sx
				if s.barrier[src] {
					// The particle would have come out of a solid cell:
					// reflect the one leaving this cell instead.
					s.fs[i][idx] = s.f[opp[i]][idx]
				} else {
					s.fs[i][idx] = s.f[i][src]
				}
			}
		}
	}
	for i := 0; i < 9; i++ {
		copy(s.f[i][w:(s.NY+1)*w], s.fs[i][w:(s.NY+1)*w])
	}
	s.applyEdges()
}

// applyEdges holds the global domain border cells at equilibrium inflow,
// the "certain cells, including the edges, are kept at fixed values" rule
// from the paper.
func (s *Slab) applyEdges() {
	w := s.P.Width
	set := func(idx int) {
		for i := 0; i < 9; i++ {
			s.f[i][idx] = equilibrium(i, 1.0, s.P.InletVelocity, 0)
		}
	}
	for r := 1; r <= s.NY; r++ {
		gy := s.Y0 - 1 + r
		if gy == 0 || gy == s.P.Height-1 {
			for x := 0; x < w; x++ {
				set(r*w + x)
			}
			continue
		}
		set(r*w + 0)
		set(r*w + w - 1)
	}
}

// Step advances the slab one iteration in serial mode (no neighbors).
// Parallel drivers call Collide / EdgeRows / SetHalo / Stream directly.
func (s *Slab) Step() {
	s.Collide()
	s.Stream()
}

// Macroscopic returns the slab's density and velocity fields from the
// last Collide, each NY*Width values, row-major starting at global row Y0.
func (s *Slab) Macroscopic() (rho, ux, uy []float64) { return s.rho, s.ux, s.uy }

// VorticityInterior computes the discrete curl at the slab's cells using
// central differences over the given neighbor velocity rows. uxBelow/uyBelow
// hold velocities of global row Y0-1 and uxAbove/uyAbove of row Y0+NY
// (nil at the global edges, where vorticity is reported as zero).
// The result has NY*Width float32 values.
func (s *Slab) VorticityInterior(uxBelow, uyBelow, uxAbove, uyAbove []float64) []float32 {
	w := s.P.Width
	out := make([]float32, s.NY*w)
	uxAt := func(x, r int) float64 { // r relative to slab start; -1 and NY use neighbors
		switch {
		case r == -1:
			return uxBelow[x]
		case r == s.NY:
			return uxAbove[x]
		default:
			return s.ux[r*w+x]
		}
	}
	uyAt := func(x, r int) float64 {
		switch {
		case r == -1:
			return uyBelow[x]
		case r == s.NY:
			return uyAbove[x]
		default:
			return s.uy[r*w+x]
		}
	}
	for r := 0; r < s.NY; r++ {
		gy := s.Y0 + r
		for x := 0; x < w; x++ {
			if x == 0 || x == w-1 || gy == 0 || gy == s.P.Height-1 {
				continue // leave zero at domain borders
			}
			if gy-1 < s.Y0 && uxBelow == nil {
				continue
			}
			if gy+1 >= s.Y0+s.NY && uxAbove == nil {
				continue
			}
			curl := (uyAt(x+1, r) - uyAt(x-1, r)) - (uxAt(x, r+1) - uxAt(x, r-1))
			out[r*w+x] = float32(curl)
		}
	}
	return out
}

// VelocityEdgeRows returns copies of the slab's macroscopic velocity on
// its boundary rows, for neighbor exchange before vorticity computation.
func (s *Slab) VelocityEdgeRows() (uxLow, uyLow, uxHigh, uyHigh []float64) {
	w := s.P.Width
	uxLow = append([]float64(nil), s.ux[:w]...)
	uyLow = append([]float64(nil), s.uy[:w]...)
	uxHigh = append([]float64(nil), s.ux[(s.NY-1)*w:s.NY*w]...)
	uyHigh = append([]float64(nil), s.uy[(s.NY-1)*w:s.NY*w]...)
	return
}
