package lbm

import (
	"fmt"
	"math"

	"ddr/internal/mpi"
)

// PlateBarrier returns a Params.Barrier placing a thin vertical plate
// (thickness cells wide, from y0 to y1) — the other classic
// vortex-shedding obstacle besides the cylinder.
func PlateBarrier(x, y0, y1, thickness int) func(px, py int) bool {
	return func(px, py int) bool {
		return px >= x && px < x+thickness && py >= y0 && py < y1
	}
}

// Diagnostics summarizes the macroscopic state of a slab (or, via
// ParallelDiagnostics, the global domain): total mass, mean kinetic
// energy density, and the extrema of the density field over fluid cells.
type Diagnostics struct {
	Mass          float64
	KineticEnergy float64 // sum of rho*|u|^2/2 over fluid cells
	MinRho        float64
	MaxRho        float64
	FluidCells    int
}

// Diagnostics computes the slab-local diagnostics from the last Collide.
func (s *Slab) Diagnostics() Diagnostics {
	d := Diagnostics{MinRho: math.Inf(1), MaxRho: math.Inf(-1)}
	w := s.P.Width
	for r := 0; r < s.NY; r++ {
		for x := 0; x < w; x++ {
			if s.barrier[(r+1)*w+x] {
				continue
			}
			idx := r*w + x
			rho := s.rho[idx]
			if rho == 0 {
				continue // never collided (first step not yet run)
			}
			d.Mass += rho
			d.KineticEnergy += 0.5 * rho * (s.ux[idx]*s.ux[idx] + s.uy[idx]*s.uy[idx])
			d.MinRho = math.Min(d.MinRho, rho)
			d.MaxRho = math.Max(d.MaxRho, rho)
			d.FluidCells++
		}
	}
	if d.FluidCells == 0 {
		d.MinRho, d.MaxRho = 0, 0
	}
	return d
}

// Stable reports whether the diagnostics indicate a healthy simulation:
// finite values and density within the low-Mach validity band.
func (d Diagnostics) Stable() bool {
	if d.FluidCells == 0 {
		return false
	}
	for _, v := range []float64{d.Mass, d.KineticEnergy, d.MinRho, d.MaxRho} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	return d.MinRho > 0.2 && d.MaxRho < 5
}

func (d Diagnostics) String() string {
	return fmt.Sprintf("mass=%.1f ke=%.4f rho=[%.3f,%.3f] cells=%d",
		d.Mass, d.KineticEnergy, d.MinRho, d.MaxRho, d.FluidCells)
}

// Reynolds returns the Reynolds number of the configured flow for a
// characteristic length L (e.g. the barrier diameter): Re = u*L/nu.
func (p Params) Reynolds(L int) float64 {
	return p.InletVelocity * float64(L) / p.Viscosity
}

// ParallelDiagnostics reduces slab diagnostics across all ranks of the
// simulation's communicator, returning global values on every rank.
func (ps *Parallel) ParallelDiagnostics() (Diagnostics, error) {
	local := ps.Slab.Diagnostics()
	sums, err := ps.Comm.AllreduceFloat64(
		[]float64{local.Mass, local.KineticEnergy, float64(local.FluidCells)}, mpi.OpSum)
	if err != nil {
		return Diagnostics{}, err
	}
	mn, err := ps.Comm.AllreduceFloat64([]float64{local.MinRho}, mpi.OpMin)
	if err != nil {
		return Diagnostics{}, err
	}
	mx, err := ps.Comm.AllreduceFloat64([]float64{local.MaxRho}, mpi.OpMax)
	if err != nil {
		return Diagnostics{}, err
	}
	return Diagnostics{
		Mass:          sums[0],
		KineticEnergy: sums[1],
		FluidCells:    int(sums[2]),
		MinRho:        mn[0],
		MaxRho:        mx[0],
	}, nil
}

// SpeedField returns |u| per slab cell as float32, a second streamable
// variable of interest besides vorticity.
func (s *Slab) SpeedField() []float32 {
	out := make([]float32, len(s.ux))
	for i := range out {
		out[i] = float32(math.Sqrt(s.ux[i]*s.ux[i] + s.uy[i]*s.uy[i]))
	}
	return out
}

// DensityField returns rho per slab cell as float32.
func (s *Slab) DensityField() []float32 {
	out := make([]float32, len(s.rho))
	for i := range out {
		out[i] = float32(s.rho[i])
	}
	return out
}
