package lbm

import (
	"fmt"
	"path/filepath"
	"testing"

	"ddr/internal/mpi"
)

// TestCheckpointRestartBitExact is the core guarantee: running A steps,
// checkpointing, restarting into fresh slabs, and running B more steps
// must equal an uninterrupted A+B-step run exactly.
func TestCheckpointRestartBitExact(t *testing.T) {
	p := testParams(48, 24)
	const a, b = 37, 23
	path := filepath.Join(t.TempDir(), "ckpt.bov")

	// Uninterrupted reference.
	ref, err := NewSlab(p, 0, p.Height)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < a+b; i++ {
		ref.Step()
	}
	refRho, refUx, refUy := ref.Macroscopic()

	// Run A steps, checkpoint.
	first, err := NewSlab(p, 0, p.Height)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < a; i++ {
		first.Step()
	}
	if err := CreateCheckpoint(path, p); err != nil {
		t.Fatal(err)
	}
	if err := first.SaveCheckpoint(path); err != nil {
		t.Fatal(err)
	}

	// Restart into a brand-new slab, run B more.
	second, err := NewSlab(p, 0, p.Height)
	if err != nil {
		t.Fatal(err)
	}
	if err := second.LoadCheckpoint(path); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < b; i++ {
		second.Step()
	}
	rho, ux, uy := second.Macroscopic()
	for i := range rho {
		if rho[i] != refRho[i] || ux[i] != refUx[i] || uy[i] != refUy[i] {
			t.Fatalf("cell %d diverged after restart: (%g,%g,%g) vs (%g,%g,%g)",
				i, rho[i], ux[i], uy[i], refRho[i], refUx[i], refUy[i])
		}
	}
}

// TestCheckpointAcrossRankCounts saves from a 4-rank run and restarts on
// 6 ranks; the continued simulation must match the serial reference
// bit-for-bit.
func TestCheckpointAcrossRankCounts(t *testing.T) {
	p := testParams(40, 30)
	const a, b = 25, 15
	path := filepath.Join(t.TempDir(), "ckpt.bov")

	ref, err := NewSlab(p, 0, p.Height)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < a+b; i++ {
		ref.Step()
	}
	refRho, _, _ := ref.Macroscopic()

	err = mpi.Launch(4, func(c *mpi.Comm) error {
		ps, err := NewParallel(c, p)
		if err != nil {
			return err
		}
		for i := 0; i < a; i++ {
			if err := ps.Step(); err != nil {
				return err
			}
		}
		return ps.SaveCheckpoint(path)
	})
	if err != nil {
		t.Fatal(err)
	}

	err = mpi.Launch(6, func(c *mpi.Comm) error {
		ps, err := NewParallel(c, p)
		if err != nil {
			return err
		}
		if err := ps.LoadCheckpoint(path); err != nil {
			return err
		}
		for i := 0; i < b; i++ {
			if err := ps.Step(); err != nil {
				return err
			}
		}
		rho, _, _ := ps.Slab.Macroscopic()
		base := ps.Slab.Y0 * p.Width
		for i := range rho {
			if rho[i] != refRho[base+i] {
				return fmt.Errorf("rank %d cell %d: %g vs %g", c.Rank(), i, rho[i], refRho[base+i])
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCheckpointGeometryMismatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt.bov")
	p := testParams(32, 16)
	if err := CreateCheckpoint(path, p); err != nil {
		t.Fatal(err)
	}
	other := testParams(32, 20)
	s, err := NewSlab(other, 0, other.Height)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SaveCheckpoint(path); err == nil {
		t.Error("geometry mismatch accepted on save")
	}
	if err := s.LoadCheckpoint(path); err == nil {
		t.Error("geometry mismatch accepted on load")
	}
	if err := CreateCheckpoint(filepath.Join(t.TempDir(), "x.bov"), Params{Width: 1}); err == nil {
		t.Error("invalid params accepted")
	}
}
