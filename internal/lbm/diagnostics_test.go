package lbm

import (
	"math"
	"testing"

	"ddr/internal/mpi"
)

func TestPlateBarrier(t *testing.T) {
	b := PlateBarrier(10, 5, 15, 2)
	if !b(10, 5) || !b(11, 14) {
		t.Error("plate cells excluded")
	}
	if b(9, 10) || b(12, 10) || b(10, 4) || b(10, 15) {
		t.Error("non-plate cells included")
	}
}

func TestDiagnosticsUniformFlow(t *testing.T) {
	p := Params{Width: 20, Height: 10, Viscosity: 0.05, InletVelocity: 0.08}
	s, err := NewSlab(p, 0, p.Height)
	if err != nil {
		t.Fatal(err)
	}
	s.Step()
	d := s.Diagnostics()
	if d.FluidCells != 200 {
		t.Errorf("fluid cells %d", d.FluidCells)
	}
	if math.Abs(d.Mass-200) > 1e-6 {
		t.Errorf("mass %f, want 200", d.Mass)
	}
	// KE per cell = rho*u^2/2 = 0.5*0.08^2.
	wantKE := 200 * 0.5 * 0.08 * 0.08
	if math.Abs(d.KineticEnergy-wantKE) > 1e-6 {
		t.Errorf("ke %f, want %f", d.KineticEnergy, wantKE)
	}
	if !d.Stable() {
		t.Errorf("uniform flow reported unstable: %v", d)
	}
}

func TestDiagnosticsMassBounded(t *testing.T) {
	// With inflow boundaries mass is not exactly conserved, but over a
	// moderate run it must stay within a few percent of the initial mass
	// and the simulation must remain stable.
	p := testParams(64, 32)
	s, err := NewSlab(p, 0, p.Height)
	if err != nil {
		t.Fatal(err)
	}
	s.Step()
	m0 := s.Diagnostics().Mass
	for i := 0; i < 400; i++ {
		s.Step()
	}
	d := s.Diagnostics()
	if !d.Stable() {
		t.Fatalf("unstable after 400 steps: %v", d)
	}
	if rel := math.Abs(d.Mass-m0) / m0; rel > 0.05 {
		t.Errorf("mass drifted %.2f%%", 100*rel)
	}
}

func TestPlateShedsVorticity(t *testing.T) {
	p := Params{
		Width: 96, Height: 48,
		Viscosity:     0.02,
		InletVelocity: 0.1,
		Barrier:       PlateBarrier(24, 16, 32, 2),
	}
	s, err := NewSlab(p, 0, p.Height)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 400; i++ {
		s.Step()
	}
	vort := s.VorticityInterior(nil, nil, nil, nil)
	var maxAbs float64
	for _, v := range vort {
		maxAbs = math.Max(maxAbs, math.Abs(float64(v)))
	}
	if maxAbs < 1e-3 {
		t.Errorf("plate produced max |vorticity| %g", maxAbs)
	}
}

func TestUnionBarriers(t *testing.T) {
	u := UnionBarriers(CylinderBarrier(10, 10, 2), nil, PlateBarrier(30, 5, 15, 1))
	if !u(10, 10) || !u(30, 10) {
		t.Error("union missing constituent cells")
	}
	if u(20, 20) {
		t.Error("union includes empty space")
	}
	if UnionBarriers()(1, 1) {
		t.Error("empty union marked a cell solid")
	}
	// Two obstacles must both shed wakes without destabilizing the flow.
	p := Params{
		Width: 96, Height: 48,
		Viscosity:     0.02,
		InletVelocity: 0.1,
		Barrier:       UnionBarriers(CylinderBarrier(20, 16, 4), CylinderBarrier(20, 32, 4)),
	}
	s, err := NewSlab(p, 0, p.Height)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		s.Step()
	}
	if d := s.Diagnostics(); !d.Stable() {
		t.Errorf("two-obstacle flow unstable: %v", d)
	}
}

func TestReynolds(t *testing.T) {
	p := Params{Viscosity: 0.02, InletVelocity: 0.1}
	if got := p.Reynolds(40); math.Abs(got-200) > 1e-9 {
		t.Errorf("Re = %f, want 200", got)
	}
}

func TestParallelDiagnosticsMatchSerial(t *testing.T) {
	p := testParams(48, 24)
	serial, err := NewSlab(p, 0, p.Height)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		serial.Step()
	}
	want := serial.Diagnostics()
	err = mpi.Launch(3, func(c *mpi.Comm) error {
		ps, err := NewParallel(c, p)
		if err != nil {
			return err
		}
		for i := 0; i < 30; i++ {
			if err := ps.Step(); err != nil {
				return err
			}
		}
		got, err := ps.ParallelDiagnostics()
		if err != nil {
			return err
		}
		if math.Abs(got.Mass-want.Mass) > 1e-9 ||
			math.Abs(got.KineticEnergy-want.KineticEnergy) > 1e-9 ||
			got.FluidCells != want.FluidCells ||
			got.MinRho != want.MinRho || got.MaxRho != want.MaxRho {
			t.Errorf("parallel %v vs serial %v", got, want)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestFieldExtractors(t *testing.T) {
	p := Params{Width: 8, Height: 6, Viscosity: 0.05, InletVelocity: 0.08}
	s, err := NewSlab(p, 0, p.Height)
	if err != nil {
		t.Fatal(err)
	}
	s.Step()
	speed := s.SpeedField()
	dens := s.DensityField()
	if len(speed) != 48 || len(dens) != 48 {
		t.Fatalf("field lengths %d/%d", len(speed), len(dens))
	}
	if math.Abs(float64(speed[10])-0.08) > 1e-6 {
		t.Errorf("speed %f, want 0.08", speed[10])
	}
	if math.Abs(float64(dens[10])-1) > 1e-6 {
		t.Errorf("density %f, want 1", dens[10])
	}
}
