package lbm

import (
	"fmt"

	"ddr/internal/grid"
	"ddr/internal/mpi"
)

// Reserved tags for halo traffic (kept below the DDR-reserved range).
const (
	tagHaloUp     = 9001 // rows travelling to the neighbor above
	tagHaloDown   = 9002 // rows travelling to the neighbor below
	tagVelocityUp = 9003
	tagVelocityDn = 9004
)

// Parallel couples one slab per rank of a communicator, performing the
// halo exchanges the paper describes (each rank communicates with at most
// its two vertical neighbors per iteration).
type Parallel struct {
	Comm *mpi.Comm
	Slab *Slab
}

// NewParallel decomposes the domain of p into comm.Size() horizontal
// slabs and returns this rank's simulator.
func NewParallel(c *mpi.Comm, p Params) (*Parallel, error) {
	if c.Size() > p.Height {
		return nil, fmt.Errorf("lbm: %d ranks for %d rows", c.Size(), p.Height)
	}
	starts := grid.SplitEven(p.Height, c.Size())
	y0 := starts[c.Rank()]
	ny := starts[c.Rank()+1] - y0
	slab, err := NewSlab(p, y0, ny)
	if err != nil {
		return nil, err
	}
	return &Parallel{Comm: c, Slab: slab}, nil
}

// Step advances the global simulation one iteration: collide locally,
// exchange post-collision edge rows with the neighbors, then stream.
func (ps *Parallel) Step() error {
	s := ps.Slab
	c := ps.Comm
	s.Collide()

	low, high := s.EdgeRows()
	var reqs []*mpi.Request
	var recvLow, recvHigh *mpi.Request
	if c.Rank() > 0 {
		reqs = append(reqs, c.Isend(c.Rank()-1, tagHaloDown, floatsToBytes(low)))
		recvLow = c.Irecv(c.Rank()-1, tagHaloUp)
	}
	if c.Rank() < c.Size()-1 {
		reqs = append(reqs, c.Isend(c.Rank()+1, tagHaloUp, floatsToBytes(high)))
		recvHigh = c.Irecv(c.Rank()+1, tagHaloDown)
	}
	if err := mpi.WaitAll(reqs...); err != nil {
		return err
	}
	var haloLow, haloHigh []float64
	if recvLow != nil {
		data, _, _, err := recvLow.Wait()
		if err != nil {
			return err
		}
		haloLow = bytesToFloats(data)
	}
	if recvHigh != nil {
		data, _, _, err := recvHigh.Wait()
		if err != nil {
			return err
		}
		haloHigh = bytesToFloats(data)
	}
	if err := s.SetHalo(haloLow, haloHigh); err != nil {
		return err
	}
	s.Stream()
	return nil
}

// Vorticity exchanges boundary velocity rows with the neighbors and
// returns the slab's vorticity field (NY*Width float32 values).
func (ps *Parallel) Vorticity() ([]float32, error) {
	s := ps.Slab
	c := ps.Comm
	uxLow, uyLow, uxHigh, uyHigh := s.VelocityEdgeRows()

	var reqs []*mpi.Request
	var recvLow, recvHigh *mpi.Request
	if c.Rank() > 0 {
		reqs = append(reqs, c.Isend(c.Rank()-1, tagVelocityDn, floatsToBytes(append(uxLow, uyLow...))))
		recvLow = c.Irecv(c.Rank()-1, tagVelocityUp)
	}
	if c.Rank() < c.Size()-1 {
		reqs = append(reqs, c.Isend(c.Rank()+1, tagVelocityUp, floatsToBytes(append(uxHigh, uyHigh...))))
		recvHigh = c.Irecv(c.Rank()+1, tagVelocityDn)
	}
	if err := mpi.WaitAll(reqs...); err != nil {
		return nil, err
	}
	w := s.P.Width
	var uxBelow, uyBelow, uxAbove, uyAbove []float64
	if recvLow != nil {
		data, _, _, err := recvLow.Wait()
		if err != nil {
			return nil, err
		}
		fl := bytesToFloats(data)
		uxBelow, uyBelow = fl[:w], fl[w:]
	}
	if recvHigh != nil {
		data, _, _, err := recvHigh.Wait()
		if err != nil {
			return nil, err
		}
		fl := bytesToFloats(data)
		uxAbove, uyAbove = fl[:w], fl[w:]
	}
	return s.VorticityInterior(uxBelow, uyBelow, uxAbove, uyAbove), nil
}
