package lbm

import "ddr/internal/fielddata"

// floatsToBytes serializes float64s little-endian for the wire.
func floatsToBytes(fs []float64) []byte { return fielddata.Float64Bytes(fs) }

// bytesToFloats reverses floatsToBytes.
func bytesToFloats(b []byte) []float64 { return fielddata.BytesFloat64(b) }

// Float32sToBytes serializes float32 fields (vorticity frames) for
// streaming and redistribution.
func Float32sToBytes(fs []float32) []byte { return fielddata.Float32Bytes(fs) }

// BytesToFloat32s reverses Float32sToBytes.
func BytesToFloat32s(b []byte) []float32 { return fielddata.BytesFloat32(b) }
