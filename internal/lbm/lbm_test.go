package lbm

import (
	"fmt"
	"math"
	"testing"

	"ddr/internal/mpi"
)

func testParams(w, h int) Params {
	return Params{
		Width:         w,
		Height:        h,
		Viscosity:     0.02,
		InletVelocity: 0.1,
		Barrier:       CylinderBarrier(w/4, h/2, h/9),
	}
}

func TestParamsValidation(t *testing.T) {
	bad := []Params{
		{Width: 2, Height: 10, Viscosity: 0.1, InletVelocity: 0.1},
		{Width: 10, Height: 2, Viscosity: 0.1, InletVelocity: 0.1},
		{Width: 10, Height: 10, Viscosity: 0, InletVelocity: 0.1},
		{Width: 10, Height: 10, Viscosity: 0.1, InletVelocity: 0.9},
	}
	for i, p := range bad {
		if _, err := NewSlab(p, 0, p.Height); err == nil {
			t.Errorf("case %d: invalid params accepted", i)
		}
	}
	if _, err := NewSlab(testParams(12, 12), 6, 10); err == nil {
		t.Error("out-of-range slab accepted")
	}
}

func TestEquilibriumMoments(t *testing.T) {
	// Zeroth and first moments of the equilibrium must reproduce rho and
	// momentum for small velocities.
	for _, u := range [][2]float64{{0, 0}, {0.1, 0}, {0.05, -0.08}} {
		rho := 1.3
		var sum, mx, my float64
		for i := 0; i < 9; i++ {
			f := equilibrium(i, rho, u[0], u[1])
			sum += f
			mx += f * float64(ex[i])
			my += f * float64(ey[i])
		}
		if math.Abs(sum-rho) > 1e-12 {
			t.Errorf("u=%v: density %f, want %f", u, sum, rho)
		}
		if math.Abs(mx-rho*u[0]) > 1e-12 || math.Abs(my-rho*u[1]) > 1e-12 {
			t.Errorf("u=%v: momentum (%f,%f), want (%f,%f)", u, mx, my, rho*u[0], rho*u[1])
		}
	}
}

func TestOppositeDirections(t *testing.T) {
	for i := 0; i < 9; i++ {
		j := opp[i]
		if ex[i] != -ex[j] || ey[i] != -ey[j] {
			t.Errorf("direction %d: opposite %d is not a reflection", i, j)
		}
	}
}

// TestUniformFlowIsSteady: with no barrier, a uniform equilibrium state at
// the inlet velocity is a fixed point of the update.
func TestUniformFlowIsSteady(t *testing.T) {
	p := Params{Width: 16, Height: 12, Viscosity: 0.05, InletVelocity: 0.08}
	s, err := NewSlab(p, 0, p.Height)
	if err != nil {
		t.Fatal(err)
	}
	for it := 0; it < 5; it++ {
		s.Step()
	}
	rho, ux, uy := s.Macroscopic()
	for i := range rho {
		if math.Abs(rho[i]-1) > 1e-9 || math.Abs(ux[i]-0.08) > 1e-9 || math.Abs(uy[i]) > 1e-9 {
			t.Fatalf("cell %d drifted: rho=%g ux=%g uy=%g", i, rho[i], ux[i], uy[i])
		}
	}
}

// TestBarrierDisturbsFlow: the obstacle must generate a wake with nonzero
// vorticity after enough iterations.
func TestBarrierDisturbsFlow(t *testing.T) {
	p := testParams(64, 32)
	s, err := NewSlab(p, 0, p.Height)
	if err != nil {
		t.Fatal(err)
	}
	for it := 0; it < 300; it++ {
		s.Step()
	}
	vort := s.VorticityInterior(nil, nil, nil, nil)
	var maxAbs float64
	for _, v := range vort {
		maxAbs = math.Max(maxAbs, math.Abs(float64(v)))
	}
	if maxAbs < 1e-4 {
		t.Errorf("max |vorticity| = %g; expected a wake", maxAbs)
	}
	// The flow must stay numerically stable.
	rho, _, _ := s.Macroscopic()
	for i, r := range rho {
		if math.IsNaN(r) || (r != 0 && (r < 0.2 || r > 5)) {
			t.Fatalf("cell %d density %g unstable", i, r)
		}
	}
}

// TestParallelMatchesSerial is the load-bearing test: running the same
// simulation decomposed over N ranks must reproduce the serial run
// bit-for-bit, proving the halo exchange is exact.
func TestParallelMatchesSerial(t *testing.T) {
	p := testParams(48, 36)
	const iters = 50

	serial, err := NewSlab(p, 0, p.Height)
	if err != nil {
		t.Fatal(err)
	}
	for it := 0; it < iters; it++ {
		serial.Step()
	}
	srho, sux, suy := serial.Macroscopic()
	serialVort := serial.VorticityInterior(nil, nil, nil, nil)

	for _, n := range []int{2, 3, 5} {
		n := n
		t.Run(fmt.Sprintf("ranks=%d", n), func(t *testing.T) {
			err := mpi.Launch(n, func(c *mpi.Comm) error {
				ps, err := NewParallel(c, p)
				if err != nil {
					return err
				}
				for it := 0; it < iters; it++ {
					if err := ps.Step(); err != nil {
						return err
					}
				}
				rho, ux, uy := ps.Slab.Macroscopic()
				base := ps.Slab.Y0 * p.Width
				for i := range rho {
					if rho[i] != srho[base+i] || ux[i] != sux[base+i] || uy[i] != suy[base+i] {
						return fmt.Errorf("rank %d cell %d: (%g,%g,%g) != serial (%g,%g,%g)",
							c.Rank(), i, rho[i], ux[i], uy[i], srho[base+i], sux[base+i], suy[base+i])
					}
				}
				vort, err := ps.Vorticity()
				if err != nil {
					return err
				}
				for i := range vort {
					if vort[i] != serialVort[base+i] {
						return fmt.Errorf("rank %d vorticity %d: %g != %g", c.Rank(), i, vort[i], serialVort[base+i])
					}
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestNewParallelTooManyRanks(t *testing.T) {
	err := mpi.Launch(4, func(c *mpi.Comm) error {
		_, err := NewParallel(c, Params{Width: 8, Height: 3, Viscosity: 0.1, InletVelocity: 0.05})
		if err == nil {
			return fmt.Errorf("4 ranks over 3 rows accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestFloatByteConversions(t *testing.T) {
	fs := []float64{0, 1.5, -2.25, math.Pi}
	got := bytesToFloats(floatsToBytes(fs))
	for i := range fs {
		if got[i] != fs[i] {
			t.Errorf("float64 roundtrip[%d] = %g", i, got[i])
		}
	}
	f32 := []float32{0, -1.25, 3.5e7}
	got32 := BytesToFloat32s(Float32sToBytes(f32))
	for i := range f32 {
		if got32[i] != f32[i] {
			t.Errorf("float32 roundtrip[%d] = %g", i, got32[i])
		}
	}
}

func TestCylinderBarrier(t *testing.T) {
	b := CylinderBarrier(10, 10, 3)
	if !b(10, 10) || !b(12, 10) || !b(10, 13) {
		t.Error("points inside radius excluded")
	}
	if b(14, 10) || b(10, 14) {
		t.Error("points outside radius included")
	}
}

func BenchmarkStep(b *testing.B) {
	p := testParams(256, 128)
	s, err := NewSlab(p, 0, p.Height)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(p.Width * p.Height))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Step()
	}
}
