package lbm

import (
	"fmt"

	"ddr/internal/bov"
	"ddr/internal/fielddata"
	"ddr/internal/grid"
)

// Checkpointing: the nine distribution planes of the D2Q9 state are the
// complete simulation state (macroscopic fields are derived). A
// checkpoint is one bov volume of depth 9 — plane i holds f_i — written
// in parallel by every slab and restartable on any rank count, because
// each restart slab reads exactly its rows from every plane.

// checkpointHeader returns the bov header for a simulation of p.
func checkpointHeader(p Params) bov.Header {
	return bov.Header{
		Dims:     [3]int{p.Width, p.Height, 9},
		ElemSize: 8,
		Kind:     "lbm-d2q9-f64",
	}
}

// planeBox returns the file region of plane i rows [y0, y0+ny).
func planeBox(p Params, i, y0, ny int) grid.Box {
	return grid.Box3(0, y0, i, p.Width, ny, 1)
}

// SaveCheckpoint writes this slab's rows of all nine distribution planes
// into the shared checkpoint file at path. The file must already exist
// (created by CreateCheckpoint) so concurrent writers can proceed
// independently.
func (s *Slab) SaveCheckpoint(path string) error {
	v, err := bov.Open(path)
	if err != nil {
		return err
	}
	defer v.Close()
	if v.Header() != checkpointHeader(s.P) {
		return fmt.Errorf("lbm: checkpoint %s does not match simulation geometry", path)
	}
	w := s.P.Width
	for i := 0; i < 9; i++ {
		rows := s.f[i][w : (s.NY+1)*w] // slab rows without ghosts
		if err := v.WriteBox(planeBox(s.P, i, s.Y0, s.NY), fielddata.Float64Bytes(rows)); err != nil {
			return err
		}
	}
	return nil
}

// LoadCheckpoint replaces this slab's distribution rows with the state
// stored at path. Ghost rows are not restored; the next Step's halo
// exchange (or the fixed-edge condition) repopulates them exactly as in a
// live run.
func (s *Slab) LoadCheckpoint(path string) error {
	v, err := bov.Open(path)
	if err != nil {
		return err
	}
	defer v.Close()
	if v.Header() != checkpointHeader(s.P) {
		return fmt.Errorf("lbm: checkpoint %s does not match simulation geometry", path)
	}
	w := s.P.Width
	for i := 0; i < 9; i++ {
		raw, err := v.ReadBox(planeBox(s.P, i, s.Y0, s.NY))
		if err != nil {
			return err
		}
		copy(s.f[i][w:(s.NY+1)*w], fielddata.BytesFloat64(raw))
	}
	return nil
}

// CreateCheckpoint initializes an empty checkpoint file for a simulation
// of p, to be filled by every slab's SaveCheckpoint.
func CreateCheckpoint(path string, p Params) error {
	if err := p.validate(); err != nil {
		return err
	}
	v, err := bov.Create(path, checkpointHeader(p))
	if err != nil {
		return err
	}
	return v.Close()
}

// SaveCheckpoint writes the parallel simulation's full state: rank 0
// creates the file, all ranks write their slabs.
func (ps *Parallel) SaveCheckpoint(path string) error {
	if ps.Comm.Rank() == 0 {
		if err := CreateCheckpoint(path, ps.Slab.P); err != nil {
			return err
		}
	}
	if err := ps.Comm.Barrier(); err != nil {
		return err
	}
	if err := ps.Slab.SaveCheckpoint(path); err != nil {
		return err
	}
	return ps.Comm.Barrier()
}

// LoadCheckpoint restores the parallel simulation's state from path. The
// restart world may have a different size than the one that saved.
func (ps *Parallel) LoadCheckpoint(path string) error {
	if err := ps.Slab.LoadCheckpoint(path); err != nil {
		return err
	}
	return ps.Comm.Barrier()
}
