package chaos

import (
	"math"

	"ddr/internal/mpi"
	"testing"
	"time"
)

// TestDeterminism: equal options and coordinates must yield equal faults,
// call after call — the property every seed reproduction rests on.
func TestDeterminism(t *testing.T) {
	opt := Options{
		Seed: 12345, DropProb: 0.3, DelayProb: 0.3, DupProb: 0.3,
		ReorderProb: 0.3, StallProb: 0.1,
	}
	a, b := New(opt), New(opt)
	for src := 0; src < 3; src++ {
		for dst := 0; dst < 3; dst++ {
			for seq := uint64(1); seq <= 50; seq++ {
				for attempt := 0; attempt < 3; attempt++ {
					fa := a.FaultFor(src, dst, 7, seq, attempt)
					fb := b.FaultFor(src, dst, 7, seq, attempt)
					if fa != fb {
						t.Fatalf("(%d,%d,seq=%d,att=%d): %+v != %+v", src, dst, seq, attempt, fa, fb)
					}
				}
			}
		}
	}
}

// TestSeedChangesSchedule: different seeds must produce different fault
// schedules (with overwhelming probability at these sample sizes).
func TestSeedChangesSchedule(t *testing.T) {
	a := New(Options{Seed: 1, DropProb: 0.5})
	b := New(Options{Seed: 2, DropProb: 0.5})
	same := true
	for seq := uint64(1); seq <= 200; seq++ {
		if a.FaultFor(0, 1, 7, seq, 0) != b.FaultFor(0, 1, 7, seq, 0) {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seeds 1 and 2 produced identical 200-message schedules")
	}
}

// TestDropRate: the empirical drop frequency must track DropProb.
func TestDropRate(t *testing.T) {
	for _, p := range []float64{0.05, 0.25, 0.75} {
		in := New(Options{Seed: 99, DropProb: p})
		const n = 20000
		drops := 0
		for seq := uint64(1); seq <= n; seq++ {
			if in.FaultFor(0, 1, 7, seq, 0).Drop {
				drops++
			}
		}
		got := float64(drops) / n
		if math.Abs(got-p) > 0.02 {
			t.Errorf("DropProb=%.2f: empirical rate %.3f", p, got)
		}
	}
}

// TestTagFloor: tags below the floor must never see any fault.
func TestTagFloor(t *testing.T) {
	in := New(Options{
		Seed: 7, DropProb: 1, DelayProb: 1, DupProb: 1, ReorderProb: 1, StallProb: 1,
		TagFloor: 1000,
		Severs:   []Sever{{From: 0, To: 1, After: 0}},
	})
	for seq := uint64(1); seq <= 100; seq++ {
		if f := in.FaultFor(0, 1, 999, seq, 0); f != (mpi.Fault{}) {
			t.Fatalf("tag below floor got fault %+v", f)
		}
		if f := in.FaultFor(0, 1, 1000, seq, 0); !f.Sever {
			t.Fatalf("tag at floor seq %d: want sever, got %+v", seq, f)
		}
	}
	// Negative (collective) tags sit below any positive floor.
	if f := in.FaultFor(0, 1, -3, 5, 0); f != (mpi.Fault{}) {
		t.Fatalf("collective tag got fault %+v", f)
	}
}

// TestSever: the directed link dies permanently once seq passes After,
// the reverse direction stays clean, and duplicate entries keep the
// earliest cut.
func TestSever(t *testing.T) {
	in := New(Options{Seed: 3, Severs: []Sever{
		{From: 0, To: 1, After: 10},
		{From: 0, To: 1, After: 4}, // earlier cut wins
	}})
	for seq := uint64(1); seq <= 20; seq++ {
		f := in.FaultFor(0, 1, 7, seq, 0)
		if want := seq > 4; f.Sever != want {
			t.Fatalf("seq %d: sever=%v, want %v", seq, f.Sever, want)
		}
		if f := in.FaultFor(1, 0, 7, seq, 0); f.Sever {
			t.Fatalf("reverse link severed at seq %d", seq)
		}
	}
}

// TestRetryEscapesDrop: a dropped message must re-roll per attempt, so a
// sub-1 drop probability cannot doom all retries deterministically.
func TestRetryEscapesDrop(t *testing.T) {
	in := New(Options{Seed: 11, DropProb: 0.9})
	const n = 2000
	doomed := 0
	for seq := uint64(1); seq <= n; seq++ {
		delivered := false
		for attempt := 0; attempt < 7; attempt++ {
			if !in.FaultFor(0, 1, 7, seq, attempt).Drop {
				delivered = true
				break
			}
		}
		if !delivered {
			doomed++
		}
	}
	// P(7 straight drops) = 0.9^7 ≈ 0.48; all-or-nothing would be a bug.
	if doomed == 0 || doomed == n {
		t.Fatalf("doomed %d/%d messages: attempts are not re-rolled", doomed, n)
	}
}

// TestShapeFaultsFirstAttemptOnly: retries that survive the drop roll
// must deliver without re-entering the delay/dup/reorder lottery.
func TestShapeFaultsFirstAttemptOnly(t *testing.T) {
	in := New(Options{Seed: 5, DelayProb: 1, DupProb: 1, ReorderProb: 1, StallProb: 1})
	f := in.FaultFor(0, 1, 7, 1, 1)
	if f.Delay != 0 || f.Duplicate || f.Reorder {
		t.Fatalf("attempt 1 got shape fault %+v", f)
	}
	f = in.FaultFor(0, 1, 7, 1, 0)
	if f.Delay == 0 || !f.Duplicate || !f.Reorder {
		t.Fatalf("attempt 0 missing shape faults: %+v", f)
	}
}

// TestDelayBounds: injected delays stay within (0, DelayMax+StallFor].
func TestDelayBounds(t *testing.T) {
	max := 3 * time.Millisecond
	stall := 10 * time.Millisecond
	in := New(Options{Seed: 8, DelayProb: 1, DelayMax: max, StallProb: 1, StallFor: stall})
	for seq := uint64(1); seq <= 500; seq++ {
		d := in.FaultFor(0, 1, 7, seq, 0).Delay
		if d <= 0 || d > max+stall {
			t.Fatalf("seq %d: delay %v out of (0, %v]", seq, d, max+stall)
		}
	}
}

// TestEnabled: only schedules that can actually inject report Enabled.
func TestEnabled(t *testing.T) {
	if New(Options{Seed: 1}).Enabled() {
		t.Error("empty schedule reports Enabled")
	}
	if New(Options{Seed: 1, DelayMax: time.Second, StallFor: time.Second}).Enabled() {
		t.Error("durations without probabilities report Enabled")
	}
	for _, opt := range []Options{
		{DropProb: 0.1}, {DelayProb: 0.1}, {DupProb: 0.1},
		{ReorderProb: 0.1}, {StallProb: 0.1},
		{Severs: []Sever{{From: 0, To: 1}}},
	} {
		if !New(opt).Enabled() {
			t.Errorf("%+v does not report Enabled", opt)
		}
	}
}

// TestParseFormatSevers: round trip plus rejection of malformed input.
func TestParseFormatSevers(t *testing.T) {
	in := []Sever{{From: 0, To: 1, After: 5}, {From: 2, To: 0, After: 12}}
	s := FormatSevers(in)
	if s != "0>1@5,2>0@12" {
		t.Fatalf("FormatSevers = %q", s)
	}
	out, err := ParseSevers(" " + s + " ")
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 || out[0] != in[0] || out[1] != in[1] {
		t.Fatalf("round trip produced %+v", out)
	}
	if got, err := ParseSevers("  "); err != nil || got != nil {
		t.Fatalf("blank input: %v, %v", got, err)
	}
	for _, bad := range []string{"0>1", "1@5", ">1@5", "0>@5", "0>1@", "a>1@5", "0>b@5", "0>1@c", "-1>2@5"} {
		if _, err := ParseSevers(bad); err == nil {
			t.Errorf("ParseSevers(%q) accepted malformed input", bad)
		}
	}
}
