// Package chaos provides a deterministic, seed-driven fault injector for
// the mpi transports. The injector decides the fate of every delivery
// attempt — delay, drop (retried by the engine), duplicate, reorder,
// stall, or sever — purely from a hash of (seed, src, dst, tag, seq,
// attempt), so a failing run reproduces exactly from its seed: same
// world, same seed, same faults, regardless of goroutine scheduling.
//
// Wire an injector into a world with
// mpi.Launch(n, body, mpi.WithFaultInjector(inj)), or install it
// process-wide with mpi.SetDefaultFaultInjector so plain mpi.Launch
// calls (and the -chaos-* binary flags built on them) pick it up.
package chaos

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"ddr/internal/mpi"
)

// Sever cuts one directed link permanently after a message count:
// delivery attempt After+1 from From to To (counting only attempts the
// TagFloor filter lets through) severs the link. The destination rank's
// mailbox is notified so its receivers fail with mpi.ErrPeerLost.
type Sever struct {
	From, To int
	After    uint64
}

// Options is the chaos schedule. Probabilities are per delivery attempt
// in [0, 1]; the zero value injects nothing.
type Options struct {
	// Seed drives every fault decision. Two runs with equal Options see
	// identical fault schedules per (src, dst, tag, seq, attempt) tuple.
	Seed uint64
	// DropProb discards the attempt; the engine retries with backoff and
	// a fresh roll, so a link only dies when every retry also drops.
	DropProb float64
	// DelayProb delays the delivery by a hash-chosen duration in
	// (0, DelayMax]. DelayMax defaults to 2ms when unset.
	DelayProb float64
	DelayMax  time.Duration
	// DupProb delivers the message twice; the receiver's dedupe window
	// discards the copy.
	DupProb float64
	// ReorderProb lets the next queued message on the link overtake this
	// one (across tag streams only; matched-stream order is preserved).
	ReorderProb float64
	// StallProb freezes the link for StallFor (default 20ms) — a long
	// bimodal delay that models a GC pause or a congested switch.
	StallProb float64
	StallFor  time.Duration
	// TagFloor, when non-zero, restricts every fault to messages with
	// tag >= TagFloor. Setting it to the DDR exchange tag base keeps the
	// mapping collectives (negative tags) and application control traffic
	// clean while the data exchange runs under fire.
	TagFloor int
	// Severs lists deterministic link cuts.
	Severs []Sever
}

// Injector implements mpi.FaultInjector with the deterministic schedule
// described by its Options. Safe for concurrent use: it is read-only
// after construction.
type Injector struct {
	opt    Options
	severs map[[2]int]uint64
}

// New builds an injector from the schedule. A nil result is never
// returned; an all-zero Options yields an injector that injects nothing.
func New(opt Options) *Injector {
	if opt.DelayMax <= 0 {
		opt.DelayMax = 2 * time.Millisecond
	}
	if opt.StallFor <= 0 {
		opt.StallFor = 20 * time.Millisecond
	}
	in := &Injector{opt: opt, severs: make(map[[2]int]uint64, len(opt.Severs))}
	for _, s := range opt.Severs {
		key := [2]int{s.From, s.To}
		if cur, ok := in.severs[key]; !ok || s.After < cur {
			in.severs[key] = s.After
		}
	}
	return in
}

// Enabled reports whether the schedule can inject anything at all.
func (in *Injector) Enabled() bool {
	o := in.opt
	return o.DropProb > 0 || o.DelayProb > 0 || o.DupProb > 0 ||
		o.ReorderProb > 0 || o.StallProb > 0 || len(in.severs) > 0
}

// Distinct purpose tags keep the per-decision hash streams independent:
// the drop roll of a message tells you nothing about its delay roll.
const (
	purposeDrop uint64 = iota + 1
	purposeDelay
	purposeDelayLen
	purposeDup
	purposeReorder
	purposeStall
)

// mix is the splitmix64 finalizer — a cheap, well-distributed 64-bit
// permutation that underlies every decision.
func mix(v uint64) uint64 {
	v += 0x9e3779b97f4a7c15
	v = (v ^ (v >> 30)) * 0xbf58476d1ce4e5b9
	v = (v ^ (v >> 27)) * 0x94d049bb133111eb
	return v ^ (v >> 31)
}

// hash folds the decision coordinates into one 64-bit value.
func (in *Injector) hash(src, dst, tag int, seq uint64, attempt int, purpose uint64) uint64 {
	h := mix(in.opt.Seed ^ 0x6c62272e07bb0142)
	h = mix(h ^ uint64(uint32(src))<<32 ^ uint64(uint32(dst)))
	h = mix(h ^ uint64(uint32(tag)))
	h = mix(h ^ seq)
	h = mix(h ^ uint64(uint32(attempt))<<8 ^ purpose)
	return h
}

// roll maps a decision to a uniform float in [0, 1).
func (in *Injector) roll(src, dst, tag int, seq uint64, attempt int, purpose uint64) float64 {
	return float64(in.hash(src, dst, tag, seq, attempt, purpose)>>11) / float64(1<<53)
}

// FaultFor implements mpi.FaultInjector.
func (in *Injector) FaultFor(src, dst, tag int, seq uint64, attempt int) mpi.Fault {
	if in.opt.TagFloor != 0 && tag < in.opt.TagFloor {
		return mpi.Fault{}
	}
	var f mpi.Fault
	if after, ok := in.severs[[2]int{src, dst}]; ok && seq > after {
		f.Sever = true
		return f
	}
	if in.opt.DropProb > 0 && in.roll(src, dst, tag, seq, attempt, purposeDrop) < in.opt.DropProb {
		f.Drop = true
		return f
	}
	// Shape faults only roll on the first attempt: a retry that survived
	// its drop roll should deliver, not re-enter the lottery.
	if attempt > 0 {
		return f
	}
	if in.opt.DelayProb > 0 && in.roll(src, dst, tag, seq, 0, purposeDelay) < in.opt.DelayProb {
		frac := in.roll(src, dst, tag, seq, 0, purposeDelayLen)
		f.Delay = time.Duration(frac * float64(in.opt.DelayMax))
		if f.Delay <= 0 {
			f.Delay = time.Microsecond
		}
	}
	if in.opt.StallProb > 0 && in.roll(src, dst, tag, seq, 0, purposeStall) < in.opt.StallProb {
		f.Delay += in.opt.StallFor
	}
	if in.opt.DupProb > 0 && in.roll(src, dst, tag, seq, 0, purposeDup) < in.opt.DupProb {
		f.Duplicate = true
	}
	if in.opt.ReorderProb > 0 && in.roll(src, dst, tag, seq, 0, purposeReorder) < in.opt.ReorderProb {
		f.Reorder = true
	}
	return f
}

// ParseSevers parses a sever schedule of the form "from>to@after" with
// comma-separated entries, e.g. "0>1@5,2>0@12": cut the 0→1 link after 5
// messages and the 2→0 link after 12.
func ParseSevers(s string) ([]Sever, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var out []Sever
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		arrow := strings.IndexByte(part, '>')
		at := strings.IndexByte(part, '@')
		if arrow <= 0 || at <= arrow {
			return nil, fmt.Errorf("chaos: sever %q is not from>to@after", part)
		}
		from, err := strconv.Atoi(part[:arrow])
		if err != nil {
			return nil, fmt.Errorf("chaos: sever %q: bad from rank: %v", part, err)
		}
		to, err := strconv.Atoi(part[arrow+1 : at])
		if err != nil {
			return nil, fmt.Errorf("chaos: sever %q: bad to rank: %v", part, err)
		}
		after, err := strconv.ParseUint(part[at+1:], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("chaos: sever %q: bad message count: %v", part, err)
		}
		if from < 0 || to < 0 {
			return nil, fmt.Errorf("chaos: sever %q: ranks must be non-negative", part)
		}
		out = append(out, Sever{From: from, To: to, After: after})
	}
	return out, nil
}

// FormatSevers is the inverse of ParseSevers.
func FormatSevers(severs []Sever) string {
	parts := make([]string, len(severs))
	for i, s := range severs {
		parts[i] = fmt.Sprintf("%d>%d@%d", s.From, s.To, s.After)
	}
	return strings.Join(parts, ",")
}
