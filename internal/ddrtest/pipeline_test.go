package ddrtest

import (
	"fmt"
	"testing"

	"ddr/internal/core"
)

// Pipelined-schedule coverage: the same fill-invariant property as
// TestDDRProperty, swept across explicit pipeline depths (1 = serial
// reference, 2 = the default double buffer, 4 = a deep ring) and the
// chaos schedules, on every transport. Every 4th case additionally arms
// a small memory budget so the pipelined bounded step schedule — the
// composition of PR 9's backend with the depth-k ring — is exercised
// under the same faults. Depth changes only the exchange schedule, so
// nothing about the judgment changes: non-lossy schedules must fill
// every cell, sever may degrade but must report exactly what is missing.

// pipelineBudget is the ceiling armed on the budgeted subsample: well
// above the arena's minimum class (so no generated case is rejected at
// mapping time) but small enough that realistic cases overflow it and
// run the bounded backend.
const pipelineBudget = 4096

// pipelineSchedules returns the chaos schedules the pipelined sweep
// runs: clean, drop, dup, and sever (delay-reorder rides along in the
// main TestDDRProperty sweep, which already runs the default depth).
func pipelineSchedules() []schedule {
	var out []schedule
	for _, sc := range schedules() {
		switch sc.name {
		case "clean", "drop", "dup", "sever":
			out = append(out, sc)
		}
	}
	return out
}

// runOnePipelined executes one (seed, depth, schedule) combination in
// ModePointToPoint — the mode whose multi-round exchange pipelining
// reschedules — and judges it exactly like the main sweep.
func runOnePipelined(t *testing.T, seed uint64, depth int, sc schedule, transport string, budget int) {
	t.Helper()
	tc := GenCase(seed, core.ModePointToPoint, *flagMaxProcs, *flagMaxExtent)
	results, err := tc.Run(RunOptions{
		Transport:     transport,
		Injector:      sc.build(&tc),
		Deadline:      sc.deadline,
		Budget:        budget,
		PipelineDepth: depth,
	})
	if err != nil {
		t.Errorf("%v depth %d budget %d under schedule %q (transport=%q): world error: %v\nreproduce: go test ./internal/ddrtest -run TestPipelinedProperty -ddr-seed=%d",
			&tc, depth, budget, sc.name, transport, err, seed)
		return
	}
	for rank, res := range results {
		var cause error
		switch {
		case res.Err != nil:
			cause = fmt.Errorf("rank %d exchange failed: %w", rank, res.Err)
		case res.CheckErr != nil:
			cause = fmt.Errorf("rank %d invariant violated: %w", rank, res.CheckErr)
		case res.Partial != nil && !sc.lossy:
			cause = fmt.Errorf("rank %d degraded under a lossless schedule: %v", rank, res.Partial)
		case budget > 0 && res.PeakStaging > int64(budget):
			cause = fmt.Errorf("rank %d peak staging %d exceeds the %d budget", rank, res.PeakStaging, budget)
		}
		if cause != nil {
			t.Errorf("%v depth %d budget %d under schedule %q (transport=%q): %v\nreproduce: go test ./internal/ddrtest -run TestPipelinedProperty -ddr-seed=%d",
				&tc, depth, budget, sc.name, transport, cause, seed)
		}
	}
}

// TestPipelinedProperty is the pipelined sweep: depths 1/2/4 × the chaos
// schedules × seeded random point-to-point cases on the in-process
// transport, with TCP, shared-memory, and hierarchical subsamples, and a
// budgeted subsample that composes pipelining with the bounded backend.
func TestPipelinedProperty(t *testing.T) {
	cases := *flagCases / 4
	if testing.Short() {
		cases = 8
	}
	if cases < 4 {
		cases = 4
	}
	defer checkGoroutines(t)
	for _, depth := range []int{1, 2, 4} {
		for _, sc := range pipelineSchedules() {
			name := fmt.Sprintf("depth%d/%s", depth, sc.name)
			t.Run(name, func(t *testing.T) {
				if *flagSeed >= 0 {
					runOnePipelined(t, uint64(*flagSeed), depth, sc, *flagTransport, 0)
					runOnePipelined(t, uint64(*flagSeed), depth, sc, *flagTransport, pipelineBudget)
					return
				}
				for i := 0; i < cases && !t.Failed(); i++ {
					// A different seed stream from TestDDRProperty's, so
					// the two sweeps explore different geometries.
					seed := uint64(i)*40503 + uint64(depth)*977 + 3
					budget := 0
					if i%4 == 3 {
						budget = pipelineBudget
					}
					runOnePipelined(t, seed, depth, sc, TransportInproc, budget)
					if *flagTCPEvery > 0 && i%*flagTCPEvery == 1 {
						runOnePipelined(t, seed, depth, sc, TransportTCP, budget)
					}
					if *flagShmEvery > 0 && i%*flagShmEvery == 6 {
						runOnePipelined(t, seed, depth, sc, TransportShm, budget)
					}
					if *flagHierEvery > 0 && i%*flagHierEvery == 12 {
						runOnePipelined(t, seed, depth, sc, TransportHier, budget)
					}
				}
			})
		}
	}
}

// TestHarnessCatchesPipelinePlantedBug proves the property harness
// detects pipelined buffer-lifetime bugs: arming PerturbPipelineForTest
// on rank 0 — its held receive payloads recycled to the staging arena
// one round early, so a later round's pack staging overwrites them
// before they are scattered — must surface as a fill-invariant
// violation on at least one generated case. Cases whose payloads all
// ride the contiguous fast path (never held) or whose round count never
// exceeds the depth are legitimately inert, so the test sweeps seeds
// until the bug bites.
func TestHarnessCatchesPipelinePlantedBug(t *testing.T) {
	if raceEnabled {
		t.Skip("the planted bug is a real buffer-lifetime data race; the detector fires before the invariant check can prove its teeth — make verify runs this test without -race")
	}
	caught := false
	for seed := uint64(1); seed <= 80 && !caught; seed++ {
		tc := GenCase(seed, core.ModePointToPoint, *flagMaxProcs, *flagMaxExtent)
		results, err := tc.Run(RunOptions{
			PipelineDepth:    2,
			MutateDescriptor: (*core.Descriptor).PerturbPipelineForTest,
		})
		if err != nil {
			t.Fatalf("seed %d: world error: %v", seed, err)
		}
		for rank, res := range results {
			if res.Err != nil {
				t.Fatalf("seed %d: rank %d exchange error instead of invariant violation: %v", seed, rank, res.Err)
			}
			if res.CheckErr != nil {
				caught = true
			}
		}
	}
	if !caught {
		t.Fatal("planted pipelined buffer-lifetime bug escaped the harness on every seed")
	}
}
