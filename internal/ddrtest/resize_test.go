package ddrtest

import (
	"testing"
	"time"

	"ddr/internal/chaos"
	"ddr/internal/core"
	"ddr/internal/grid"
	"ddr/internal/mpi"
)

// resizeSchedule pairs a chaos configuration with how the harness judges
// a resize outcome, mirroring the redistribution schedules.
type resizeSchedule struct {
	name     string
	build    func(rc *ResizeCase) mpi.FaultInjector
	deadline time.Duration
	lossy    bool
}

func resizeSchedules() []resizeSchedule {
	return []resizeSchedule{
		{name: "clean", build: func(*ResizeCase) mpi.FaultInjector { return nil }},
		{name: "drop", build: func(rc *ResizeCase) mpi.FaultInjector {
			return chaos.New(chaos.Options{Seed: rc.Seed, DropProb: 0.08})
		}},
		{name: "dup-delay", build: func(rc *ResizeCase) mpi.FaultInjector {
			return chaos.New(chaos.Options{
				Seed: rc.Seed, DupProb: 0.15, DelayProb: 0.2, DelayMax: 500 * time.Microsecond,
			})
		}},
		{name: "sever", lossy: true, deadline: 5 * time.Second, build: func(rc *ResizeCase) mpi.FaultInjector {
			from := int(rc.Seed % uint64(rc.NProcs))
			to := int((rc.Seed / 7) % uint64(rc.NProcs))
			if to == from {
				to = (to + 1) % rc.NProcs
			}
			return chaos.New(chaos.Options{
				Seed:     rc.Seed,
				TagFloor: core.ExchangeTagBase,
				Severs:   []chaos.Sever{{From: from, To: to, After: rc.Seed % 2}},
			})
		}},
	}
}

// TestResizeProperty sweeps seeded random resize cases through every
// schedule: the delta exchange must satisfy the fill invariant on all
// surviving ranks, degrading only under lossy schedules.
func TestResizeProperty(t *testing.T) {
	cases := 120
	if testing.Short() {
		cases = 20
	}
	defer checkGoroutines(t)
	for _, sc := range resizeSchedules() {
		t.Run(sc.name, func(t *testing.T) {
			for i := 0; i < cases && !t.Failed(); i++ {
				seed := uint64(i)*2654435761 + uint64(i) + 17
				rc := GenResizeCase(seed, *flagMaxProcs, *flagMaxExtent)
				tcp := i%8 == 0
				results, err := rc.RunResize(ResizeRunOptions{
					TCP:      tcp,
					Injector: sc.build(&rc),
					Deadline: sc.deadline,
				})
				if err != nil {
					t.Fatalf("%v schedule %q (tcp=%v): world error: %v", &rc, sc.name, tcp, err)
				}
				for rank, res := range results {
					switch {
					case res.Err != nil:
						t.Fatalf("%v schedule %q (tcp=%v): rank %d exchange failed: %v", &rc, sc.name, tcp, rank, res.Err)
					case res.CheckErr != nil:
						t.Fatalf("%v schedule %q (tcp=%v): rank %d invariant violated: %v", &rc, sc.name, tcp, rank, res.CheckErr)
					case res.Partial != nil && !sc.lossy:
						t.Fatalf("%v schedule %q (tcp=%v): rank %d degraded under a lossless schedule: %v", &rc, sc.name, tcp, rank, res.Partial)
					}
				}
			}
		})
	}
}

// TestResizeSeverLeavingRank is the satellite scenario: a rank leaving
// the group is severed mid-handoff, and the surviving N′ ranks must
// still satisfy the fill invariant — the leaver's undelivered regions
// surface as reported-missing (sentinel or value, never garbage), while
// everything from healthy ranks lands intact.
func TestResizeSeverLeavingRank(t *testing.T) {
	const leaver = 3
	domain := grid.Box2(0, 0, 32, 16)
	oldSlabs := grid.Slabs(domain, 0, 4) // 4 ranks hold vertical slabs
	newSlabs := grid.Slabs(domain, 1, 3) // survivors re-tile horizontally
	empty := grid.Box2(0, 0, 0, 0)

	rc := ResizeCase{
		Seed:     42,
		NProcs:   4,
		Layout:   core.Layout2D,
		ElemSize: 4,
		Domain:   domain,
		OldNeeds: oldSlabs,
		NewNeeds: []grid.Box{newSlabs[0], newSlabs[1], newSlabs[2], empty},
	}

	// The leaver hands one concatenated message to each survivor; cutting
	// its links to ranks 1 and 2 on the first exchange delivery (and
	// sparing rank 0) kills the handoff partway through.
	severs := []chaos.Sever{
		{From: leaver, To: 1, After: 0},
		{From: leaver, To: 2, After: 0},
	}
	inj := chaos.New(chaos.Options{Seed: 42, TagFloor: core.ExchangeTagBase, Severs: severs})

	for _, tcp := range []bool{false, true} {
		results, err := rc.RunResize(ResizeRunOptions{
			TCP:      tcp,
			Injector: inj,
			Deadline: 5 * time.Second,
		})
		if err != nil {
			t.Fatalf("tcp=%v: world error: %v", tcp, err)
		}
		degraded := false
		for rank := 0; rank < 3; rank++ {
			res := results[rank]
			if res.Err != nil {
				t.Fatalf("tcp=%v: surviving rank %d aborted instead of degrading: %v", tcp, rank, res.Err)
			}
			if res.CheckErr != nil {
				t.Fatalf("tcp=%v: surviving rank %d invariant violated: %v", tcp, rank, res.CheckErr)
			}
			if res.Partial != nil {
				degraded = true
				for _, lost := range res.Partial.LostPeers {
					if lost != leaver {
						t.Fatalf("tcp=%v: rank %d reported healthy peer %d lost", tcp, rank, lost)
					}
				}
			}
		}
		if !degraded {
			t.Fatalf("tcp=%v: severing the leaver degraded no survivor — the schedule cut nothing", tcp)
		}
	}
}

// TestResizeCatchesPlantedBug proves the resize harness has teeth: an
// off-by-one perturbation of a compiled delta receive region must
// surface as an invariant violation on at least one seed.
func TestResizeCatchesPlantedBug(t *testing.T) {
	caught, perturbed := false, false
	for seed := uint64(1); seed <= 40 && !caught; seed++ {
		rc := GenResizeCase(seed, *flagMaxProcs, *flagMaxExtent)
		applied := false
		results, err := rc.RunResize(ResizeRunOptions{
			Mutate: func(p *core.DeltaPlan) { applied = p.PerturbDeltaForTest() },
		})
		if err != nil {
			t.Fatalf("seed %d: world error: %v", seed, err)
		}
		if !applied {
			continue // rank 0 had no shiftable receive region in this case
		}
		perturbed = true
		for _, res := range results {
			if res.CheckErr != nil {
				caught = true
			}
			if res.Err != nil {
				t.Fatalf("seed %d: exchange error instead of invariant violation: %v", seed, res.Err)
			}
		}
	}
	if !perturbed {
		t.Fatal("no generated case offered a perturbable delta plan")
	}
	if !caught {
		t.Fatal("planted delta-compiler bug escaped the harness")
	}
}
