//go:build race

package ddrtest

// raceEnabled reports whether the race detector is compiled in. The
// pipelined planted-bug self-test skips under it: the planted bug is a
// genuine buffer-lifetime data race, so the detector fails the run
// before the harness's fill-invariant check can prove it has teeth.
// The non-race gate in `make verify` runs the test by name.
const raceEnabled = true
