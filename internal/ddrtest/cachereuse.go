package ddrtest

import (
	"fmt"

	"ddr/internal/core"
	"ddr/internal/grid"
	"ddr/internal/mpi"
)

// CacheReuseResult is the outcome of one rank's three-pass cache-reuse
// schedule.
type CacheReuseResult struct {
	Hits, Misses int64
	// CheckErrs holds the invariant-check outcome of each pass (nil =
	// clean). Pass 0 is the cold setup, pass 1 the warm replay of the
	// identical geometry, pass 2 the perturbed geometry.
	CheckErrs [3]error
	// PerturbApplied reports whether the stale-cache corruption was
	// planted on this rank between passes 0 and 1.
	PerturbApplied bool
}

// RunCacheReuse drives the case's geometry through one long-lived
// descriptor per rank in three SetupDataMapping/ReorganizeData passes:
// the original geometry cold, the identical geometry again (which must be
// a plan-cache hit), and a perturbed geometry with every need box shifted
// (which must miss and recompile). The fill invariant is checked after
// every exchange.
//
// With plantStale, rank 0 corrupts its cached plan via PerturbPlanForTest
// between the first and second pass — simulating a stale or damaged cache
// entry — and the warm pass's invariant check is expected to catch it;
// callers assert on CheckErrs[1] and PerturbApplied.
func (tc *Case) RunCacheReuse(plantStale bool) ([]CacheReuseResult, error) {
	perturbed := tc.perturbedNeeds()
	results := make([]CacheReuseResult, tc.NProcs)
	err := mpi.Launch(tc.NProcs, func(c *mpi.Comm) error {
		rank := c.Rank()
		res := &results[rank]
		d, err := core.NewDescriptor(tc.NProcs, tc.Layout, core.Uint8,
			core.WithExchangeMode(tc.Mode), core.WithElemSize(tc.ElemSize))
		if err != nil {
			return err
		}
		pass := func(i int, need grid.Box) error {
			if err := d.SetupDataMapping(c, tc.Chunks[rank], need); err != nil {
				return fmt.Errorf("pass %d: %w", i, err)
			}
			own := make([][]byte, len(tc.Chunks[rank]))
			for j, b := range tc.Chunks[rank] {
				own[j] = tc.FillBox(b)
			}
			needBuf := make([]byte, need.Volume()*tc.ElemSize)
			for j := range needBuf {
				needBuf[j] = Sentinel
			}
			if err := d.ReorganizeData(c, own, needBuf); err != nil {
				return fmt.Errorf("pass %d: %w", i, err)
			}
			res.CheckErrs[i] = tc.CheckNeed(need, needBuf, nil)
			return nil
		}

		if err := pass(0, tc.Needs[rank]); err != nil {
			return err
		}
		if plantStale && rank == 0 {
			// The cached entry and d.Plan() are the same object, so this
			// poisons what the warm pass will replay.
			res.PerturbApplied = d.Plan().PerturbPlanForTest()
		}
		if err := pass(1, tc.Needs[rank]); err != nil {
			return err
		}
		if err := pass(2, perturbed[rank]); err != nil {
			return err
		}
		res.Hits, res.Misses = d.PlanCacheStats()
		return nil
	})
	return results, err
}

// perturbedNeeds derives a second need layout from the case: every rank's
// need box shifted by one cell along the first axis (shrinking at the
// domain edge keeps the box non-empty). The global geometry differs from
// the original on every rank, so its fingerprint cannot collide with a
// correct cache implementation's notion of "same layout".
func (tc *Case) perturbedNeeds() []grid.Box {
	out := make([]grid.Box, len(tc.Needs))
	for r, need := range tc.Needs {
		shifted := need
		if shifted.Dims[0] > 1 {
			shifted.Dims[0]--
		}
		shifted.Offset[0]++
		out[r] = shifted
	}
	return out
}
