package ddrtest

// Elastic-resize half of the harness: seeded random (old geometry, new
// geometry) pairs — survivors whose need shifted, ranks leaving the
// group, ranks joining with no prior data — run through core.CompileDelta
// and DeltaPlan.Exchange on a chosen transport, optionally under a
// deterministic chaos schedule, and the surviving ranks' new buffers are
// checked against the closed-form invariant: cells some old rank held
// carry the fill value, cells nobody held keep the sentinel, and cells
// in regions a partial completion reported missing hold one or the other
// but never garbage.

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"ddr/internal/core"
	"ddr/internal/grid"
	"ddr/internal/mpi"
)

// ResizeCase is one fully specified elastic-resize scenario over the
// resize collective's NProcs ranks (the union of old and new groups).
// A zero-extent OldNeeds entry marks a joiner, a zero-extent NewNeeds
// entry a leaver. All fields derive deterministically from Seed.
type ResizeCase struct {
	Seed     uint64
	NProcs   int
	Layout   core.Layout
	ElemSize int
	Domain   grid.Box
	OldNeeds []grid.Box
	NewNeeds []grid.Box
}

func (rc *ResizeCase) String() string {
	return fmt.Sprintf("resize seed=%d nprocs=%d layout=%v elem=%d domain=%v",
		rc.Seed, rc.NProcs, rc.Layout, rc.ElemSize, rc.Domain)
}

// GenResizeCase derives a random resize case from seed, bounded by
// maxProcs ranks and maxExtent cells per axis. Equal arguments produce
// equal cases.
func GenResizeCase(seed uint64, maxProcs, maxExtent int) ResizeCase {
	if maxProcs < 2 {
		maxProcs = 2
	}
	if maxExtent < 4 {
		maxExtent = 4
	}
	rng := rand.New(rand.NewSource(int64(seed)))
	rc := ResizeCase{
		Seed:     seed,
		NProcs:   2 + rng.Intn(maxProcs-1),
		Layout:   core.Layout(1 + rng.Intn(3)),
		ElemSize: elemSizes[rng.Intn(len(elemSizes))],
	}
	nd := rc.Layout.NDims()
	dims := make([]int, nd)
	for i := 0; i < nd; i++ {
		dims[i] = 4 + rng.Intn(maxExtent-3)
	}
	rc.Domain = grid.MustBox(make([]int, nd), dims)
	empty := grid.MustBox(make([]int, nd), make([]int, nd))

	rc.OldNeeds = make([]grid.Box, rc.NProcs)
	rc.NewNeeds = make([]grid.Box, rc.NProcs)
	for r := 0; r < rc.NProcs; r++ {
		switch role := rng.Intn(8); {
		case role == 0: // joiner: no old data, receives everything
			rc.OldNeeds[r] = empty
			rc.NewNeeds[r] = grid.RandomBoxIn(rng, rc.Domain)
		case role == 1: // leaver: hands its data off, keeps nothing
			rc.OldNeeds[r] = grid.RandomBoxIn(rng, rc.Domain)
			rc.NewNeeds[r] = empty
		case role == 2: // survivor with an unrelated new need
			rc.OldNeeds[r] = grid.RandomBoxIn(rng, rc.Domain)
			rc.NewNeeds[r] = grid.RandomBoxIn(rng, rc.Domain)
		default: // survivor whose need shifted and rescaled a little
			old := grid.RandomBoxIn(rng, rc.Domain)
			nb := old
			for a := 0; a < nd; a++ {
				nb.Offset[a] += rng.Intn(5) - 2
				nb.Dims[a] += rng.Intn(5) - 2
				if nb.Dims[a] < 1 {
					nb.Dims[a] = 1
				}
				if nb.Offset[a] < 0 {
					nb.Offset[a] = 0
				}
				if end := rc.Domain.End(a); nb.Offset[a]+nb.Dims[a] > end {
					nb.Offset[a] = end - nb.Dims[a]
				}
			}
			rc.OldNeeds[r] = old
			rc.NewNeeds[r] = nb
		}
	}
	return rc
}

// valueAt is the closed-form fill, shared with the redistribution half
// of the harness so resize and exchange cases agree on ground truth.
func (rc *ResizeCase) valueAt(x, y, z, b int) byte {
	v := mix(rc.Seed ^ uint64(uint32(x)) ^ uint64(uint32(y))<<20 ^ uint64(uint32(z))<<40)
	return byte(v >> (8 * (b % 8)))
}

// FillBox renders the closed-form pattern for box, row-major, x fastest.
func (rc *ResizeCase) FillBox(box grid.Box) []byte {
	buf := make([]byte, box.Volume()*rc.ElemSize)
	i := 0
	forEachCell(box, func(x, y, z int) {
		for b := 0; b < rc.ElemSize; b++ {
			buf[i] = rc.valueAt(x, y, z, b)
			i++
		}
	})
	return buf
}

// CheckNew verifies the resize invariant over a surviving rank's new
// buffer: cells covered by some rank's old need hold the closed-form
// value, cells nobody held keep the sentinel, and cells inside missing
// (regions a partial completion reported lost) may hold either — but
// never anything else.
func (rc *ResizeCase) CheckNew(need grid.Box, buf []byte, missing []grid.Box) error {
	if len(buf) != need.Volume()*rc.ElemSize {
		return fmt.Errorf("new buffer holds %d bytes, want %d", len(buf), need.Volume()*rc.ElemSize)
	}
	var firstErr error
	i := 0
	forEachCell(need, func(x, y, z int) {
		cell := buf[i : i+rc.ElemSize]
		i += rc.ElemSize
		if firstErr != nil {
			return
		}
		pt := [grid.MaxDims]int{x, y, z}
		held := false
		for _, b := range rc.OldNeeds {
			if !b.Empty() && b.ContainsPoint(pt) {
				held = true
				break
			}
		}
		sentinel := true
		expected := true
		for b := 0; b < rc.ElemSize; b++ {
			if cell[b] != Sentinel {
				sentinel = false
			}
			if cell[b] != rc.valueAt(x, y, z, b) {
				expected = false
			}
		}
		switch {
		case !held:
			if !sentinel {
				firstErr = fmt.Errorf("cell (%d,%d,%d) no old rank held was overwritten", x, y, z)
			}
		case inBoxes(missing, pt):
			if !sentinel && !expected {
				firstErr = fmt.Errorf("cell (%d,%d,%d) in a reported-missing region holds corrupt data", x, y, z)
			}
		default:
			if !expected {
				firstErr = fmt.Errorf("cell (%d,%d,%d) byte mismatch: got %v", x, y, z, cell)
			}
		}
	})
	return firstErr
}

// ResizeRunOptions selects how a resize case executes.
type ResizeRunOptions struct {
	TCP      bool                  // socket transport instead of in-process
	Injector mpi.FaultInjector     // nil runs fault-free
	Deadline time.Duration         // per-exchange bound; required for sever schedules
	Mutate   func(*core.DeltaPlan) // test hook: corrupt the compiled plan on rank 0
}

// RunResize compiles the case's delta plans and executes the resize
// exchange, returning per-rank results (indexed by resize-collective
// rank). Leavers have nothing to check, so their CheckErr stays nil. The
// returned error reports infrastructure failures; exchange and invariant
// outcomes land in the results.
func (rc *ResizeCase) RunResize(opt ResizeRunOptions) ([]RankResult, error) {
	plans, err := core.CompileDelta(rc.ElemSize, rc.OldNeeds, rc.NewNeeds)
	if err != nil {
		return nil, err
	}
	if opt.Mutate != nil {
		opt.Mutate(plans[0])
	}
	results := make([]RankResult, rc.NProcs)
	body := func(c *mpi.Comm) error {
		rank := c.Rank()
		res := &results[rank]
		var oldData, newData []byte
		if !rc.OldNeeds[rank].Empty() {
			oldData = rc.FillBox(rc.OldNeeds[rank])
		}
		if !rc.NewNeeds[rank].Empty() {
			newData = make([]byte, rc.NewNeeds[rank].Volume()*rc.ElemSize)
			for i := range newData {
				newData[i] = Sentinel
			}
		}
		err := plans[rank].ExchangeCtx(nil, c, oldData, newData, opt.Deadline)
		var pe *core.PartialError
		if errors.As(err, &pe) {
			res.Partial = pe
			err = nil
		}
		if err != nil {
			res.Err = err
			return nil
		}
		if rc.NewNeeds[rank].Empty() {
			return nil
		}
		var missing []grid.Box
		if res.Partial != nil {
			missing = res.Partial.Missing
		}
		res.CheckErr = rc.CheckNew(rc.NewNeeds[rank], newData, missing)
		return nil
	}
	launchOpts := []mpi.LaunchOption{mpi.WithFaultInjector(opt.Injector)}
	if opt.TCP {
		launchOpts = append(launchOpts, mpi.WithTransport(mpi.TransportTCP))
	}
	return results, mpi.Launch(rc.NProcs, body, launchOpts...)
}
