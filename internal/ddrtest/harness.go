// Package ddrtest is a property-based correctness harness for the DDR
// stack. It generates random redistribution cases — layout, domain,
// producer tiling, per-rank need boxes, element size — from a single
// seed, runs them through the full SetupDataMapping/ReorganizeData path
// on a chosen transport and exchange mode, optionally under a
// deterministic chaos schedule, and checks the ground-truth invariant:
// every need-box cell covered by the domain holds the closed-form fill
// value of its global coordinates, and every uncovered cell still holds
// the sentinel. Cases reproduce exactly from their seed.
package ddrtest

import (
	"errors"
	"fmt"
	"math/rand"

	"time"

	"ddr/internal/core"
	"ddr/internal/grid"
	"ddr/internal/mpi"
)

// Sentinel is the byte the harness pre-fills need buffers with; cells no
// producer covers must still hold it after the exchange.
const Sentinel byte = 0xA5

// Case is one fully specified redistribution scenario. All fields derive
// deterministically from Seed via GenCase.
type Case struct {
	Seed     uint64
	NProcs   int
	Layout   core.Layout
	ElemSize int
	Mode     core.ExchangeMode
	Domain   grid.Box
	Chunks   [][]grid.Box // per rank; collectively tile Domain
	Needs    []grid.Box   // per rank; may extend past Domain
}

func (tc *Case) String() string {
	return fmt.Sprintf("seed=%d nprocs=%d layout=%v elem=%d mode=%v domain=%v",
		tc.Seed, tc.NProcs, tc.Layout, tc.ElemSize, tc.Mode, tc.Domain)
}

// mix is the splitmix64 finalizer, the same permutation the chaos
// injector uses; here it derives cell values from coordinates.
func mix(v uint64) uint64 {
	v += 0x9e3779b97f4a7c15
	v = (v ^ (v >> 30)) * 0xbf58476d1ce4e5b9
	v = (v ^ (v >> 27)) * 0x94d049bb133111eb
	return v ^ (v >> 31)
}

var elemSizes = []int{1, 2, 3, 4, 8}

// GenCase derives a random case from seed for the given exchange mode,
// bounded by maxProcs ranks and maxExtent cells per axis. Equal arguments
// produce equal cases.
func GenCase(seed uint64, mode core.ExchangeMode, maxProcs, maxExtent int) Case {
	if maxProcs < 2 {
		maxProcs = 2
	}
	if maxExtent < 4 {
		maxExtent = 4
	}
	rng := rand.New(rand.NewSource(int64(seed)))
	tc := Case{
		Seed:     seed,
		NProcs:   2 + rng.Intn(maxProcs-1),
		Layout:   core.Layout(1 + rng.Intn(3)),
		ElemSize: elemSizes[rng.Intn(len(elemSizes))],
		Mode:     mode,
	}
	nd := tc.Layout.NDims()
	offs := make([]int, nd)
	dims := make([]int, nd)
	for i := 0; i < nd; i++ {
		dims[i] = 4 + rng.Intn(maxExtent-3)
	}
	tc.Domain = grid.MustBox(offs, dims)

	// Tile the domain into up to 2*nprocs chunks and deal them to random
	// ranks; some ranks may own nothing, some several (uneven rounds).
	parts := tc.NProcs + rng.Intn(tc.NProcs+1)
	tiles := grid.RandomTiling(rng, tc.Domain, parts)
	tc.Chunks = make([][]grid.Box, tc.NProcs)
	for i, tile := range tiles {
		r := i % tc.NProcs // everyone owns at least one of the first nprocs
		if i >= tc.NProcs {
			r = rng.Intn(tc.NProcs)
		}
		tc.Chunks[r] = append(tc.Chunks[r], tile)
	}

	// Independent random need per rank; one in four pokes past the domain
	// so the sentinel-preservation half of the invariant gets exercised.
	tc.Needs = make([]grid.Box, tc.NProcs)
	for r := range tc.Needs {
		need := grid.RandomBoxIn(rng, tc.Domain)
		if rng.Intn(4) == 0 {
			axis := rng.Intn(nd)
			need.Dims[axis] += 1 + rng.Intn(3)
		}
		tc.Needs[r] = need
	}
	return tc
}

// valueAt is the closed-form fill: byte b of the element at global
// coordinates (x,y,z) under this case's seed.
func (tc *Case) valueAt(x, y, z, b int) byte {
	v := mix(tc.Seed ^ uint64(uint32(x)) ^ uint64(uint32(y))<<20 ^ uint64(uint32(z))<<40)
	return byte(v >> (8 * (b % 8)))
}

// FillBox renders the closed-form pattern for box into a fresh buffer,
// row-major with x fastest — the layout the core package exchanges.
func (tc *Case) FillBox(box grid.Box) []byte {
	buf := make([]byte, box.Volume()*tc.ElemSize)
	i := 0
	forEachCell(box, func(x, y, z int) {
		for b := 0; b < tc.ElemSize; b++ {
			buf[i] = tc.valueAt(x, y, z, b)
			i++
		}
	})
	return buf
}

// forEachCell visits box's cells in buffer order (x fastest). Unused
// trailing dims of a Box are 1, so the triple loop covers 1D/2D/3D.
func forEachCell(box grid.Box, f func(x, y, z int)) {
	for z := 0; z < box.Dims[2]; z++ {
		for y := 0; y < box.Dims[1]; y++ {
			for x := 0; x < box.Dims[0]; x++ {
				f(box.Offset[0]+x, box.Offset[1]+y, box.Offset[2]+z)
			}
		}
	}
}

// CheckNeed verifies the invariant over a rank's post-exchange need
// buffer. missing lists regions a partial completion reported lost:
// cells inside them may hold either the sentinel (data never arrived) or
// the expected value (it arrived before the loss), but never anything
// else. Cells outside the domain must hold the sentinel; all remaining
// cells must hold the closed-form value.
func (tc *Case) CheckNeed(need grid.Box, buf []byte, missing []grid.Box) error {
	if len(buf) != need.Volume()*tc.ElemSize {
		return fmt.Errorf("need buffer holds %d bytes, want %d", len(buf), need.Volume()*tc.ElemSize)
	}
	var firstErr error
	i := 0
	forEachCell(need, func(x, y, z int) {
		cell := buf[i : i+tc.ElemSize]
		i += tc.ElemSize
		if firstErr != nil {
			return
		}
		pt := [grid.MaxDims]int{x, y, z}
		inDomain := tc.Domain.ContainsPoint(pt)
		sentinel := true
		expected := true
		for b := 0; b < tc.ElemSize; b++ {
			if cell[b] != Sentinel {
				sentinel = false
			}
			if cell[b] != tc.valueAt(x, y, z, b) {
				expected = false
			}
		}
		switch {
		case !inDomain:
			if !sentinel {
				firstErr = fmt.Errorf("cell (%d,%d,%d) outside the domain was overwritten", x, y, z)
			}
		case inBoxes(missing, pt):
			if !sentinel && !expected {
				firstErr = fmt.Errorf("cell (%d,%d,%d) in a reported-missing region holds corrupt data", x, y, z)
			}
		default:
			if !expected {
				firstErr = fmt.Errorf("cell (%d,%d,%d) byte mismatch: got %v", x, y, z, cell)
			}
		}
	})
	return firstErr
}

func inBoxes(boxes []grid.Box, pt [grid.MaxDims]int) bool {
	for _, b := range boxes {
		if b.ContainsPoint(pt) {
			return true
		}
	}
	return false
}

// RankResult is the per-rank outcome of one case run.
type RankResult struct {
	// Partial is non-nil when the exchange degraded gracefully.
	Partial *core.PartialError
	// Err is a non-degradation exchange failure.
	Err error
	// CheckErr is an invariant violation found in the need buffer.
	CheckErr error
	// BoundedSteps is the number of bounded-backend steps the exchange
	// executed (0 when the one-shot backend ran).
	BoundedSteps int
	// PeakStaging is the rank's measured peak staging footprint in bytes
	// during a bounded exchange; 0 otherwise.
	PeakStaging int64
}

// Transport names accepted by RunOptions.Transport.
const (
	TransportInproc = ""     // in-process channels (the default)
	TransportTCP    = "tcp"  // loopback sockets
	TransportShm    = "shm"  // shared-memory rings
	TransportHier   = "hier" // shm transport under a two-node hierarchical topology
)

// RunOptions selects how a case executes.
type RunOptions struct {
	// Transport picks the wire: "" (in-process), "tcp", "shm", or "hier"
	// (shm rings under a two-node hierarchical topology, exercising the
	// leader-exchange path).
	Transport string
	// TCP is the deprecated spelling of Transport == "tcp"; it is honored
	// when Transport is empty.
	TCP      bool
	Injector mpi.FaultInjector // nil runs fault-free
	Deadline time.Duration     // per-exchange bound; required for sever schedules
	Mutate   func(*core.Plan)  // test hook: corrupt the compiled plan on rank 0
	// MutateDescriptor is the descriptor-level sibling of Mutate, also
	// applied on rank 0 after mapping setup. It exists for planted bugs
	// that live in exchange execution state rather than the compiled plan
	// (e.g. core.(*Descriptor).PerturbPipelineForTest).
	MutateDescriptor func(*core.Descriptor)
	// Budget, when positive, arms core.WithMemoryBudget so cases whose
	// single-shot footprint exceeds it run on the bounded backend.
	Budget int
	// PipelineDepth, when positive, arms core.WithPipelineDepth; 0 keeps
	// the descriptor's default depth.
	PipelineDepth int
}

// launchOptions maps the option's transport name onto launcher options.
func (opt RunOptions) launchOptions(nprocs int) ([]mpi.LaunchOption, error) {
	transport := opt.Transport
	if transport == TransportInproc && opt.TCP {
		transport = TransportTCP
	}
	lo := []mpi.LaunchOption{mpi.WithFaultInjector(opt.Injector)}
	switch transport {
	case TransportInproc:
	case TransportTCP:
		lo = append(lo, mpi.WithTransport(mpi.TransportTCP))
	case TransportShm:
		lo = append(lo, mpi.WithTransport(mpi.TransportShm))
	case TransportHier:
		lo = append(lo, mpi.WithTransport(mpi.TransportShm),
			mpi.WithTopology(mpi.NodesOf(nprocs, 2)))
	default:
		return nil, fmt.Errorf("ddrtest: unknown transport %q", transport)
	}
	return lo, nil
}

// Run executes the case and returns the per-rank results. The returned
// error reports infrastructure failures (descriptor construction, mapping
// setup, transport bring-up); exchange and invariant outcomes land in the
// results so one rank's degradation does not tear down its peers.
func (tc *Case) Run(opt RunOptions) ([]RankResult, error) {
	results := make([]RankResult, tc.NProcs)
	body := func(c *mpi.Comm) error {
		rank := c.Rank()
		res := &results[rank]
		dopts := []core.Option{
			core.WithExchangeMode(tc.Mode),
			core.WithElemSize(tc.ElemSize),
		}
		if opt.Deadline > 0 {
			dopts = append(dopts, core.WithExchangeDeadline(opt.Deadline))
		}
		if opt.Budget > 0 {
			dopts = append(dopts, core.WithMemoryBudget(opt.Budget))
		}
		if opt.PipelineDepth > 0 {
			dopts = append(dopts, core.WithPipelineDepth(opt.PipelineDepth))
		}
		d, err := core.NewDescriptor(tc.NProcs, tc.Layout, core.Uint8, dopts...)
		if err != nil {
			return err
		}
		if err := d.SetupDataMapping(c, tc.Chunks[rank], tc.Needs[rank]); err != nil {
			return err
		}
		if opt.Mutate != nil && rank == 0 {
			opt.Mutate(d.Plan())
		}
		if opt.MutateDescriptor != nil && rank == 0 {
			opt.MutateDescriptor(d)
		}
		own := make([][]byte, len(tc.Chunks[rank]))
		for i, b := range tc.Chunks[rank] {
			own[i] = tc.FillBox(b)
		}
		needBuf := make([]byte, tc.Needs[rank].Volume()*tc.ElemSize)
		for i := range needBuf {
			needBuf[i] = Sentinel
		}
		err = d.ReorganizeData(c, own, needBuf)
		res.BoundedSteps = d.BoundedSteps()
		res.PeakStaging = d.LastPeakStaging()
		var pe *core.PartialError
		if errors.As(err, &pe) {
			res.Partial = pe
			err = nil
		}
		if err != nil {
			res.Err = err
			return nil
		}
		var missing []grid.Box
		if res.Partial != nil {
			missing = res.Partial.Missing
		}
		res.CheckErr = tc.CheckNeed(tc.Needs[rank], needBuf, missing)
		return nil
	}
	launchOpts, err := opt.launchOptions(tc.NProcs)
	if err != nil {
		return results, err
	}
	err = mpi.Launch(tc.NProcs, body, launchOpts...)
	return results, err
}
