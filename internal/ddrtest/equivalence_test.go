package ddrtest

import (
	"encoding/json"
	"runtime"
	"testing"

	"ddr/internal/core"
)

// TestCompilerEquivalenceSweep differentially tests the production
// indexed + parallel plan compiler against the brute-force reference over
// seeded random geometries: random tilings, uneven chunk counts, empty
// ranks, and needs poking past the domain. Every rank of every case must
// compile to an identical plan at every parallelism. Run under -race this
// also shakes down the parallel construction phase.
func TestCompilerEquivalenceSweep(t *testing.T) {
	seeds := 30
	if testing.Short() {
		seeds = 8
	}
	pars := []int{1, 4, runtime.GOMAXPROCS(0)}
	for seed := 0; seed < seeds; seed++ {
		tc := GenCase(uint64(seed), core.ModeAlltoallw, 12, 24)
		for rank := 0; rank < tc.NProcs; rank++ {
			brute, err := core.CompileBruteForTest(rank, tc.ElemSize, tc.Chunks, tc.Needs)
			if err != nil {
				t.Fatalf("%v rank %d: brute: %v", &tc, rank, err)
			}
			want, err := json.Marshal(brute.Summary())
			if err != nil {
				t.Fatal(err)
			}
			for _, par := range pars {
				indexed, err := core.CompileForTest(rank, tc.ElemSize, tc.Chunks, tc.Needs, par)
				if err != nil {
					t.Fatalf("%v rank %d par %d: %v", &tc, rank, par, err)
				}
				got, err := json.Marshal(indexed.Summary())
				if err != nil {
					t.Fatal(err)
				}
				if string(got) != string(want) {
					t.Fatalf("%v rank %d par %d: plan diverges from brute force\nbrute:   %s\nindexed: %s",
						&tc, rank, par, want, got)
				}
				if brute.Stats() != indexed.Stats() {
					t.Fatalf("%v rank %d par %d: stats diverge: brute %+v indexed %+v",
						&tc, rank, par, brute.Stats(), indexed.Stats())
				}
			}
		}
	}
}

// TestCacheReuseSchedule runs the three-pass cache-reuse schedule over a
// few seeds: identical geometry twice (one compile, one hit) plus a
// perturbed geometry (a second compile), all passes preserving the fill
// invariant.
func TestCacheReuseSchedule(t *testing.T) {
	for _, seed := range []uint64{3, 11, 27} {
		tc := GenCase(seed, core.ModePointToPoint, 6, 20)
		results, err := tc.RunCacheReuse(false)
		if err != nil {
			t.Fatalf("%v: %v", &tc, err)
		}
		for rank, res := range results {
			for pass, cerr := range res.CheckErrs {
				if cerr != nil {
					t.Errorf("%v rank %d pass %d: %v", &tc, rank, pass, cerr)
				}
			}
			if res.Hits != 1 || res.Misses != 2 {
				t.Errorf("%v rank %d: %d hits / %d misses, want 1 / 2", &tc, rank, res.Hits, res.Misses)
			}
		}
	}
}

// TestCacheReuseCatchesStalePlan plants a corrupted cached plan on rank 0
// (via PerturbPlanForTest) between the cold and warm passes. The warm
// pass replays the poisoned plan, and the invariant check must flag the
// misplaced data — proving the harness would catch a stale-cache bug such
// as a hit returning a plan for the wrong geometry.
func TestCacheReuseCatchesStalePlan(t *testing.T) {
	applied, caught := false, false
	for seed := uint64(1); seed <= 40 && !caught; seed++ {
		tc := GenCase(seed, core.ModePointToPoint, 6, 20)
		results, err := tc.RunCacheReuse(true)
		if err != nil {
			t.Fatalf("%v: %v", &tc, err)
		}
		if !results[0].PerturbApplied {
			continue // no shiftable span in this plan; try the next seed
		}
		applied = true
		if results[0].CheckErrs[0] != nil {
			t.Fatalf("%v: cold pass dirty before perturbation: %v", &tc, results[0].CheckErrs[0])
		}
		if results[0].CheckErrs[1] != nil {
			caught = true
		}
	}
	if !applied {
		t.Fatal("no seed produced a perturbable plan; the stale-cache property was never exercised")
	}
	if !caught {
		t.Fatal("no warm pass surfaced the corrupted cached plan; the stale-cache bug escaped")
	}
}
