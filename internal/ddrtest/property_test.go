package ddrtest

import (
	"flag"
	"fmt"
	"runtime"
	"testing"
	"time"

	"ddr/internal/chaos"
	"ddr/internal/core"
	"ddr/internal/mpi"
)

// Harness flags. A failing run prints the exact command that reproduces
// it:
//
//	go test ./internal/ddrtest -run TestDDRProperty -ddr-seed=N
var (
	flagSeed = flag.Int64("ddr-seed", -1,
		"run only this case seed (every mode and schedule) instead of the sweep")
	flagCases = flag.Int("ddr-cases", 200,
		"randomized cases per exchange mode per chaos schedule")
	flagMaxProcs = flag.Int("ddr-max-procs", 5,
		"largest world size the generator may pick")
	flagMaxExtent = flag.Int("ddr-max-extent", 20,
		"largest domain extent per axis the generator may pick")
	flagTCPEvery = flag.Int("ddr-tcp-every", 16,
		"run every Nth case on the TCP transport as well (0 disables)")
	flagShmEvery = flag.Int("ddr-shm-every", 16,
		"run every Nth case on the shared-memory transport as well (0 disables)")
	flagHierEvery = flag.Int("ddr-hier-every", 16,
		"run every Nth case on the hierarchical (shm + two-node topology) path as well (0 disables)")
	flagTransport = flag.String("ddr-transport", "",
		"transport for -ddr-seed reproductions: \"\" (in-process), tcp, shm, or hier")
)

// severDeadline bounds exchanges under sever schedules so lost peers
// surface as partial completions instead of hangs.
const severDeadline = 5 * time.Second

// schedule pairs a chaos configuration with how the harness must judge
// its outcome.
type schedule struct {
	name string
	// build constructs the injector for a case (nil = fault-free). Sever
	// schedules target concrete ranks, so they see the case.
	build func(tc *Case) mpi.FaultInjector
	// deadline, when set, arms graceful degradation.
	deadline time.Duration
	// lossy marks schedules that may legitimately end in partial
	// completion; non-lossy schedules must complete fully on every rank.
	lossy bool
	// a2aw reports whether the schedule is meaningful for ModeAlltoallw
	// (whose exchange rides collective tags, see TagFloor note below).
	a2aw bool
}

// Schedules. Point-to-point modes use TagFloor = core.ExchangeTagBase so
// the mapping collectives run clean and only exchange traffic is under
// fire; ModeAlltoallw's exchange itself uses collective (negative) tags,
// so its recoverable schedules set TagFloor = 0 and fault everything —
// including the mapping — which recoverable faults must survive too.
func schedules() []schedule {
	return []schedule{
		{name: "clean", build: func(*Case) mpi.FaultInjector { return nil }, a2aw: true},
		{name: "drop", a2aw: true, build: func(tc *Case) mpi.FaultInjector {
			return chaos.New(chaos.Options{Seed: tc.Seed, DropProb: 0.08})
		}},
		{name: "delay-reorder", a2aw: true, build: func(tc *Case) mpi.FaultInjector {
			return chaos.New(chaos.Options{
				Seed: tc.Seed, DelayProb: 0.2, DelayMax: 500 * time.Microsecond,
				ReorderProb: 0.15, StallProb: 0.02, StallFor: 2 * time.Millisecond,
			})
		}},
		{name: "dup", a2aw: true, build: func(tc *Case) mpi.FaultInjector {
			return chaos.New(chaos.Options{Seed: tc.Seed, DupProb: 0.15, DelayProb: 0.1})
		}},
		{name: "sever", lossy: true, deadline: severDeadline, build: func(tc *Case) mpi.FaultInjector {
			// Cut one deterministic link a few exchange messages in. The
			// tag floor confines the cut to DDR exchange traffic, so the
			// mapping completes and the loss surfaces as a PartialError.
			from := int(tc.Seed % uint64(tc.NProcs))
			to := int((tc.Seed / 7) % uint64(tc.NProcs))
			if to == from {
				to = (to + 1) % tc.NProcs
			}
			return chaos.New(chaos.Options{
				Seed:     tc.Seed,
				TagFloor: core.ExchangeTagBase,
				Severs:   []chaos.Sever{{From: from, To: to, After: tc.Seed % 3}},
			})
		}},
	}
}

var propertyModes = []core.ExchangeMode{
	core.ModeAlltoallw,
	core.ModePointToPoint,
	core.ModePointToPointFused,
}

// runOne executes one (seed, mode, schedule) combination and fails the
// test with a reproduction command if the invariant does not hold.
func runOne(t *testing.T, seed uint64, mode core.ExchangeMode, sc schedule, transport string) {
	t.Helper()
	tc := GenCase(seed, mode, *flagMaxProcs, *flagMaxExtent)
	results, err := tc.Run(RunOptions{
		Transport: transport,
		Injector:  sc.build(&tc),
		Deadline:  sc.deadline,
	})
	if err != nil {
		fail(t, &tc, sc, transport, fmt.Errorf("world error: %w", err))
		return
	}
	for rank, res := range results {
		switch {
		case res.Err != nil:
			fail(t, &tc, sc, transport, fmt.Errorf("rank %d exchange failed: %w", rank, res.Err))
		case res.CheckErr != nil:
			fail(t, &tc, sc, transport, fmt.Errorf("rank %d invariant violated: %w", rank, res.CheckErr))
		case res.Partial != nil && !sc.lossy:
			fail(t, &tc, sc, transport, fmt.Errorf("rank %d degraded under a lossless schedule: %v", rank, res.Partial))
		}
	}
}

// fail reports a violation together with the minimal reproduction found
// by shrinking the generator bounds for the same seed.
func fail(t *testing.T, tc *Case, sc schedule, transport string, cause error) {
	t.Helper()
	procs, extent := shrink(tc.Seed, tc.Mode, sc, transport)
	t.Errorf("%v under schedule %q (transport=%q): %v\nreproduce: go test ./internal/ddrtest -run TestDDRProperty -ddr-seed=%d -ddr-max-procs=%d -ddr-max-extent=%d -ddr-transport=%s",
		tc, sc.name, transport, cause, tc.Seed, procs, extent, transport)
}

// shrink re-runs the failing seed with progressively tighter generator
// bounds and returns the smallest (maxProcs, maxExtent) that still fails,
// so the reproduction command builds the least case that shows the bug.
func shrink(seed uint64, mode core.ExchangeMode, sc schedule, transport string) (procs, extent int) {
	procs, extent = *flagMaxProcs, *flagMaxExtent
	fails := func(p, e int) bool {
		tc := GenCase(seed, mode, p, e)
		results, err := tc.Run(RunOptions{Transport: transport, Injector: sc.build(&tc), Deadline: sc.deadline})
		if err != nil {
			return true
		}
		for _, res := range results {
			if res.Err != nil || res.CheckErr != nil || (res.Partial != nil && !sc.lossy) {
				return true
			}
		}
		return false
	}
	for procs > 2 && fails(procs-1, extent) {
		procs--
	}
	for extent > 4 && fails(procs, extent-1) {
		extent--
	}
	return procs, extent
}

// TestDDRProperty is the harness sweep: for every exchange mode and
// chaos schedule it runs the configured number of seeded random cases
// (default 200, reduced under -short) on the in-process transport, plus
// TCP, shared-memory, and hierarchical subsamples, and requires the
// redistribution invariant to hold.
func TestDDRProperty(t *testing.T) {
	cases := *flagCases
	if testing.Short() {
		cases = 25
	}
	defer checkGoroutines(t)
	for _, mode := range propertyModes {
		for _, sc := range schedules() {
			if mode == core.ModeAlltoallw && !sc.a2aw {
				continue
			}
			name := fmt.Sprintf("%v/%s", mode, sc.name)
			t.Run(name, func(t *testing.T) {
				if *flagSeed >= 0 {
					runOne(t, uint64(*flagSeed), mode, sc, *flagTransport)
					return
				}
				for i := 0; i < cases && !t.Failed(); i++ {
					seed := uint64(i)*2654435761 + uint64(i) + 1
					runOne(t, seed, mode, sc, TransportInproc)
					// Subsample the heavier transports on offset strides so
					// no two sweeps hit the same case indices.
					if *flagTCPEvery > 0 && i%*flagTCPEvery == 0 {
						runOne(t, seed, mode, sc, TransportTCP)
					}
					if *flagShmEvery > 0 && i%*flagShmEvery == 5 {
						runOne(t, seed, mode, sc, TransportShm)
					}
					if *flagHierEvery > 0 && i%*flagHierEvery == 11 {
						runOne(t, seed, mode, sc, TransportHier)
					}
				}
			})
		}
	}
}

// TestHarnessCatchesPlantedBug proves the harness has teeth: a one-element
// perturbation of a compiled overlap span (an injected overlap-math bug)
// must surface as an invariant violation on at least one seed.
func TestHarnessCatchesPlantedBug(t *testing.T) {
	caught, perturbed := false, false
	for seed := uint64(1); seed <= 40 && !caught; seed++ {
		tc := GenCase(seed, core.ModePointToPoint, *flagMaxProcs, *flagMaxExtent)
		applied := false
		results, err := tc.Run(RunOptions{
			Mutate: func(p *core.Plan) { applied = p.PerturbPlanForTest() },
		})
		if err != nil {
			t.Fatalf("seed %d: world error: %v", seed, err)
		}
		if !applied {
			continue // no contiguous span to perturb in this case
		}
		perturbed = true
		for _, res := range results {
			if res.CheckErr != nil {
				caught = true
			}
			if res.Err != nil {
				t.Fatalf("seed %d: exchange error instead of invariant violation: %v", seed, res.Err)
			}
		}
	}
	if !perturbed {
		t.Fatal("no generated case offered a perturbable plan entry")
	}
	if !caught {
		t.Fatal("planted overlap-math bug escaped the harness")
	}
}

// checkGoroutines is the harness's leak check: after all worlds have shut
// down, the goroutine count must return to (near) its starting point.
// Retries absorb goroutines still unwinding from closed worlds.
func checkGoroutines(t *testing.T) {
	t.Helper()
	base := runtime.NumGoroutine()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		n := runtime.NumGoroutine()
		if n <= base+2 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			buf = buf[:runtime.Stack(buf, true)]
			t.Errorf("goroutine leak: %d running, started with %d\n%s", n, base, buf)
			return
		}
		time.Sleep(50 * time.Millisecond)
	}
}
