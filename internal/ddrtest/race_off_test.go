//go:build !race

package ddrtest

// raceEnabled reports whether the race detector is compiled in.
const raceEnabled = false
