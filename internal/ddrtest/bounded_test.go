package ddrtest

import (
	"flag"
	"fmt"
	"testing"

	"ddr/internal/core"
)

// Bounded-backend property schedule: the same generator, invariant, and
// chaos schedules as TestDDRProperty, but every case runs under a memory
// budget tight enough to push it onto the bounded step compiler. The
// fill invariant must hold and every rank's measured peak staging must
// stay under the budget — under faults and across all transports.

var flagBoundedSeeds = flag.Int("ddr-bounded-seeds", 12,
	"seeded cases per exchange mode in the bounded property schedule")

// boundedTiers derives the budget ladder for a case from its
// offline-compiled single-shot footprint: half and an eighth of the
// one-shot cost, plus the one-chunk minimum (the smallest arena class).
// Tiers at or above the footprint are dropped — they would select the
// one-shot backend and test nothing new.
func boundedTiers(t *testing.T, tc *Case) (tiers []int, footprint int) {
	t.Helper()
	p, err := core.NewPlanFromGeometry(0, tc.ElemSize, tc.Chunks, tc.Needs)
	if err != nil {
		t.Fatalf("%v: offline plan: %v", tc, err)
	}
	footprint = p.SingleShotFootprint(tc.Mode)
	for _, b := range []int{footprint / 2, footprint / 8, 256} {
		if b < 256 {
			b = 256
		}
		if b >= footprint {
			continue
		}
		dup := false
		for _, prev := range tiers {
			dup = dup || prev == b
		}
		if !dup {
			tiers = append(tiers, b)
		}
	}
	return tiers, footprint
}

// runBoundedOne executes one (seed, mode, schedule, transport, budget)
// combination and checks the invariant plus the budget-enforcement
// property: when the bounded backend ran, measured peak staging must not
// exceed the budget on any rank.
func runBoundedOne(t *testing.T, seed uint64, mode core.ExchangeMode, sc schedule, transport string, budget int) {
	t.Helper()
	tc := GenCase(seed, mode, *flagMaxProcs, *flagMaxExtent)
	results, err := tc.Run(RunOptions{
		Transport: transport,
		Injector:  sc.build(&tc),
		Deadline:  sc.deadline,
		Budget:    budget,
	})
	bfail := func(cause error) {
		t.Errorf("%v budget=%d under schedule %q (transport=%q): %v\nreproduce: go test ./internal/ddrtest -run TestBoundedProperty -ddr-seed=%d -ddr-transport=%s",
			&tc, budget, sc.name, transport, cause, seed, transport)
	}
	if err != nil {
		bfail(fmt.Errorf("world error: %w", err))
		return
	}
	for rank, res := range results {
		switch {
		case res.Err != nil:
			bfail(fmt.Errorf("rank %d exchange failed: %w", rank, res.Err))
		case res.CheckErr != nil:
			bfail(fmt.Errorf("rank %d invariant violated: %w", rank, res.CheckErr))
		case res.Partial != nil && !sc.lossy:
			bfail(fmt.Errorf("rank %d degraded under a lossless schedule: %v", rank, res.Partial))
		case res.BoundedSteps == 0:
			bfail(fmt.Errorf("rank %d ran the one-shot backend despite budget %d below its footprint", rank, budget))
		case res.PeakStaging > int64(budget):
			bfail(fmt.Errorf("rank %d peak staging %d exceeds budget %d", rank, res.PeakStaging, budget))
		}
	}
}

// TestBoundedProperty sweeps seeded cases × exchange modes × chaos
// schedules × budget tiers through the bounded backend on the in-process
// transport, with clean-schedule coverage of the TCP, shared-memory, and
// hierarchical transports at the tightest tier.
func TestBoundedProperty(t *testing.T) {
	seeds := *flagBoundedSeeds
	if testing.Short() {
		seeds = 5
	}
	defer checkGoroutines(t)
	for _, mode := range propertyModes {
		for _, sc := range schedules() {
			if sc.name == "delay-reorder" {
				continue // covered by TestDDRProperty; keep this sweep's budget on faults that alter delivery
			}
			if mode == core.ModeAlltoallw && !sc.a2aw {
				continue
			}
			name := fmt.Sprintf("%v/%s", mode, sc.name)
			t.Run(name, func(t *testing.T) {
				for i := 0; i < seeds && !t.Failed(); i++ {
					seed := uint64(i)*2654435761 + uint64(i) + 1
					if *flagSeed >= 0 {
						seed = uint64(*flagSeed)
					}
					tc := GenCase(seed, mode, *flagMaxProcs, *flagMaxExtent)
					tiers, _ := boundedTiers(t, &tc)
					for _, budget := range tiers {
						runBoundedOne(t, seed, mode, sc, *flagTransport, budget)
					}
					// Tightest tier once per remote transport, clean
					// schedule only (the chaos×transport product belongs to
					// TestDDRProperty; here each wire proves it carries a
					// sliced schedule).
					if sc.name == "clean" && len(tiers) > 0 && *flagTransport == TransportInproc {
						tight := tiers[len(tiers)-1]
						for ti, tr := range []string{TransportTCP, TransportShm, TransportHier} {
							if i%3 == ti {
								runBoundedOne(t, seed, mode, sc, tr, tight)
							}
						}
					}
					if *flagSeed >= 0 {
						break
					}
				}
			})
		}
	}
}

// TestHarnessCatchesBoundedPlantedBug proves the bounded property
// schedule has teeth: shifting one receive slice of a compiled bounded
// schedule by one cell (a step-boundary off-by-one) must surface as an
// invariant violation on at least one seed. The wire lengths still
// match, so only the fill check can see it.
func TestHarnessCatchesBoundedPlantedBug(t *testing.T) {
	caught, perturbed := false, false
	for seed := uint64(1); seed <= 40 && !caught; seed++ {
		tc := GenCase(seed, core.ModePointToPoint, *flagMaxProcs, *flagMaxExtent)
		tiers, _ := boundedTiers(t, &tc)
		if len(tiers) == 0 {
			continue // footprint already at the floor; no bounded run possible
		}
		applied := false
		results, err := tc.Run(RunOptions{
			Budget: tiers[len(tiers)-1],
			Mutate: func(p *core.Plan) { applied = p.PerturbBoundedForTest() },
		})
		if err != nil {
			t.Fatalf("seed %d: world error: %v", seed, err)
		}
		if !applied {
			continue // no shiftable receive slice in this case
		}
		perturbed = true
		for _, res := range results {
			if res.CheckErr != nil {
				caught = true
			}
			if res.Err != nil {
				t.Fatalf("seed %d: exchange error instead of invariant violation: %v", seed, res.Err)
			}
		}
	}
	if !perturbed {
		t.Fatal("no generated case offered a perturbable bounded schedule")
	}
	if !caught {
		t.Fatal("planted bounded off-by-one escaped the harness")
	}
}
