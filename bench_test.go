// Package ddr_bench holds the top-level benchmark harness: one benchmark
// per table and figure of the paper's evaluation section, plus ablations
// for the design choices DESIGN.md calls out (exchange mode, transport,
// chunking technique). Run with:
//
//	go test -bench=. -benchmem .
package ddr_bench

import (
	"fmt"
	"os"
	"sync"
	"testing"

	"ddr/internal/bov"
	"ddr/internal/core"
	"ddr/internal/experiments"
	"ddr/internal/grid"
	"ddr/internal/lbm"
	"ddr/internal/mpi"
	"ddr/internal/perfmodel"
	"ddr/internal/render"
	"ddr/internal/tiff"
)

// launchInProc and launchTCP adapt mpi.Launch to the fixed-arity
// launcher shape the transport tables share.
func launchInProc(n int, body func(*mpi.Comm) error) error {
	return mpi.Launch(n, body)
}

func launchTCP(n int, body func(*mpi.Comm) error) error {
	return mpi.Launch(n, body, mpi.WithTransport(mpi.TransportTCP))
}

// runE1 performs one full E1 redistribution (descriptor + mapping +
// exchange) on the given runtime flavour and exchange mode.
func runE1(run func(int, func(*mpi.Comm) error) error, mode core.ExchangeMode) error {
	return run(4, func(c *mpi.Comm) error {
		own, need := experiments.E1Geometry(c.Rank())
		desc, err := core.NewDescriptor(4, core.Layout2D, core.Float32, core.WithExchangeMode(mode))
		if err != nil {
			return err
		}
		if err := desc.SetupDataMapping(c, own, need); err != nil {
			return err
		}
		bufs := [][]byte{make([]byte, own[0].Volume()*4), make([]byte, own[1].Volume()*4)}
		return desc.ReorganizeData(c, bufs, make([]byte, need.Volume()*4))
	})
}

// BenchmarkTable1E1 measures the complete running example of Table I /
// Figure 1: world spin-up, mapping setup, and the two-round exchange.
func BenchmarkTable1E1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := runE1(launchInProc, core.ModeAlltoallw); err != nil {
			b.Fatal(err)
		}
	}
}

// benchStack lazily generates the benchmark TIFF stack shared by the
// Table II benchmarks.
var benchStack struct {
	once sync.Once
	info tiff.StackInfo
	err  error
}

func stackInfo(b *testing.B) tiff.StackInfo {
	benchStack.once.Do(func() {
		dir, err := os.MkdirTemp("", "ddr-bench-stack-*")
		if err != nil {
			benchStack.err = err
			return
		}
		if err := tiff.WriteStack(dir, 128, 64, 32, 16, tiff.FormatUint); err != nil {
			benchStack.err = err
			return
		}
		benchStack.info, benchStack.err = tiff.ProbeStack(dir)
	})
	if benchStack.err != nil {
		b.Fatal(benchStack.err)
	}
	return benchStack.info
}

// BenchmarkTable2TIFFLoad measures the real laptop-scale analogue of
// Table II: parallel stack loading without DDR and with both DDR
// techniques, 8 ranks.
func BenchmarkTable2TIFFLoad(b *testing.B) {
	info := stackInfo(b)
	bytes := int64(info.Width) * int64(info.Height) * int64(info.Depth) * int64(info.BytesPerSample())
	cases := []struct {
		name string
		load func(c *mpi.Comm) error
	}{
		{"NoDDR", func(c *mpi.Comm) error {
			_, err := experiments.LoadStackNoDDR(c, info)
			return err
		}},
		{"DDR-RoundRobin", func(c *mpi.Comm) error {
			_, err := experiments.LoadStackDDR(c, info, experiments.RoundRobin)
			return err
		}},
		{"DDR-Consecutive", func(c *mpi.Comm) error {
			_, err := experiments.LoadStackDDR(c, info, experiments.Consecutive)
			return err
		}},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			b.SetBytes(bytes)
			for i := 0; i < b.N; i++ {
				if err := mpi.Launch(8, tc.load); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTable3Schedule measures computing the exact paper-scale
// communication schedules (the content of Table III) for every scale and
// technique.
func BenchmarkTable3Schedule(b *testing.B) {
	domain := experiments.PaperDomain()
	for _, tech := range []experiments.Technique{experiments.RoundRobin, experiments.Consecutive} {
		for _, p := range experiments.PaperScales {
			b.Run(fmt.Sprintf("%v-%d", tech, p), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := experiments.ScheduleFor(domain, p, tech, 4); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkTable4DataReduction measures the Table IV pipeline per frame: a
// real LBM step batch, vorticity, colormap, and JPEG encode.
func BenchmarkTable4DataReduction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.MeasureJPEGBytesPerPixel(162, 65, 20, 2, 5, 75); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure2Render measures the parallel DVR rendering of the
// synthetic CT volume (Figure 2) on 8 ranks.
func BenchmarkFigure2Render(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RenderFigure2(64, 64, 48, 8); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure3Scaling measures producing the full Figure 3 series
// (exact schedules at all four scales plus the machine model).
func BenchmarkFigure3Scaling(b *testing.B) {
	m := perfmodel.Cooley()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure3(m); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure4Streaming measures the M-to-N in-transit pipeline
// (Figure 4) per streamed frame batch: 4 simulation ranks, 2 analysis
// ranks, two frames.
func BenchmarkFigure4Streaming(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, err := experiments.RunInTransit(experiments.InTransitConfig{
			M: 4, N: 2,
			GridW: 96, GridH: 48,
			Iterations:  10,
			OutputEvery: 5,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure5Regrid measures the slab-to-rectangle redistribution of
// Figure 5 on the consumer group (10 slabs onto 4 rectangles).
func BenchmarkFigure5Regrid(b *testing.B) {
	const m, n = 10, 4
	const w, h = 640, 400
	domain := grid.Box2(0, 0, w, h)
	starts := grid.SplitEven(h, m)
	blocks := grid.SplitEven(m, n)
	rows, cols := grid.Factor2(n)
	squares := grid.Grid2D(domain, rows, cols)
	b.SetBytes(int64(w) * int64(h) * 4)
	for i := 0; i < b.N; i++ {
		err := mpi.Launch(n, func(c *mpi.Comm) error {
			var own []core.Chunk
			for p := blocks[c.Rank()]; p < blocks[c.Rank()+1]; p++ {
				box := grid.Box2(0, starts[p], w, starts[p+1]-starts[p])
				own = append(own, core.Chunk{Box: box, Data: make([]byte, box.Volume()*4)})
			}
			_, err := core.Redistribute(c, core.Layout2D, core.Float32, own, squares[c.Rank()])
			return err
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationP2PvsAlltoallw compares the two exchange mechanisms
// (paper §V future work) on a sparse 3D slab-to-pencil redistribution
// where only a few peers share data.
func BenchmarkAblationP2PvsAlltoallw(b *testing.B) {
	const procs = 8
	domain := grid.Box3(0, 0, 0, 64, 32, 32)
	slabs := grid.Slabs(domain, 2, procs)
	pencils := grid.Slabs(domain, 0, procs)
	for _, mode := range []core.ExchangeMode{core.ModeAlltoallw, core.ModePointToPoint, core.ModePointToPointFused} {
		b.Run(mode.String(), func(b *testing.B) {
			b.SetBytes(int64(domain.Volume()) * 4)
			for i := 0; i < b.N; i++ {
				err := mpi.Launch(procs, func(c *mpi.Comm) error {
					desc, err := core.NewDescriptor(procs, core.Layout3D, core.Float32,
						core.WithExchangeMode(mode))
					if err != nil {
						return err
					}
					slab := slabs[c.Rank()]
					if err := desc.SetupDataMapping(c, []grid.Box{slab}, pencils[c.Rank()]); err != nil {
						return err
					}
					return desc.ReorganizeData(c,
						[][]byte{make([]byte, slab.Volume()*4)},
						make([]byte, pencils[c.Rank()].Volume()*4))
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationTransports compares the in-process and TCP transports
// on the same redistribution.
func BenchmarkAblationTransports(b *testing.B) {
	for _, tr := range []struct {
		name string
		run  func(int, func(*mpi.Comm) error) error
	}{{"inproc", launchInProc}, {"tcp", launchTCP}} {
		b.Run(tr.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := runE1(tr.run, core.ModeAlltoallw); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkReorganizeThroughput measures steady-state ReorganizeData
// throughput (mapping reused, fresh data each call) for growing domains —
// the dynamic-data path that dominates in-transit workloads.
func BenchmarkReorganizeThroughput(b *testing.B) {
	for _, side := range []int{64, 128, 256} {
		b.Run(fmt.Sprintf("%dx%d", side, side), func(b *testing.B) {
			const procs = 4
			domain := grid.Box2(0, 0, side, side)
			slabs := grid.Slabs(domain, 1, procs)
			rows, cols := grid.Factor2(procs)
			squares := grid.Grid2D(domain, rows, cols)
			b.SetBytes(int64(domain.Volume()) * 4)
			err := mpi.Launch(procs, func(c *mpi.Comm) error {
				desc, err := core.NewDescriptor(procs, core.Layout2D, core.Float32)
				if err != nil {
					return err
				}
				slab := slabs[c.Rank()]
				if err := desc.SetupDataMapping(c, []grid.Box{slab}, squares[c.Rank()]); err != nil {
					return err
				}
				src := make([]byte, slab.Volume()*4)
				dst := make([]byte, squares[c.Rank()].Volume()*4)
				if c.Rank() == 0 {
					b.ResetTimer()
				}
				if err := c.Barrier(); err != nil {
					return err
				}
				for i := 0; i < b.N; i++ {
					if err := desc.ReorganizeData(c, [][]byte{src}, dst); err != nil {
						return err
					}
				}
				return nil
			})
			if err != nil {
				b.Fatal(err)
			}
		})
	}
}

// BenchmarkAblationReduction compares the two data-reduction paths of the
// Table IV pipeline: render-to-JPEG (the paper's) vs the error-bounded
// numerical quantizer (this repo's extension).
func BenchmarkAblationReduction(b *testing.B) {
	cases := []struct {
		name    string
		measure func() (float64, error)
	}{
		{"jpeg", func() (float64, error) {
			return experiments.MeasureJPEGBytesPerPixel(162, 65, 20, 2, 5, 75)
		}},
		{"quantizer", func() (float64, error) {
			return experiments.MeasureQuantizedBytesPerPixel(162, 65, 20, 2, 5, 1e-4)
		}},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := tc.measure(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationRestartIO compares the two restart strategies on a
// real shared checkpoint file: direct strided brick reads versus one
// sequential slab read per rank followed by a DDR redistribution.
func BenchmarkAblationRestartIO(b *testing.B) {
	dir := b.TempDir()
	h := bov.Header{Dims: [3]int{96, 48, 54}, ElemSize: 1}
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunRestartStudy(
			fmt.Sprintf("%s/ckpt-%d.bov", dir, i), 8, 27, h)
		if err != nil {
			b.Fatal(err)
		}
		if !res.Match {
			b.Fatal("restart strategies disagree")
		}
	}
}

// BenchmarkInTransit3D measures the combined-use-case pipeline: 3D LBM
// slabs stream to analysis ranks, DDR regrids slabs into bricks, and the
// parallel DVR renders a frame.
func BenchmarkInTransit3D(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, err := experiments.RunInTransit3D(experiments.InTransit3DConfig{
			M: 4, N: 2,
			W: 24, H: 16, D: 16,
			Iterations:  10,
			OutputEvery: 5,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationCoupling compares in-situ (analysis on simulation
// ranks) against in-transit (separate analysis ranks fed over the
// coupling) on the same LBM workload, the trade-off of paper §II-C.
func BenchmarkAblationCoupling(b *testing.B) {
	cfg := experiments.InTransitConfig{
		M: 4, N: 2,
		GridW: 96, GridH: 48,
		Iterations:  40,
		OutputEvery: 10,
	}
	b.Run("in-situ", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := experiments.RunInSitu(cfg); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("in-transit", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := experiments.RunInTransit(cfg); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkWeakScalingLBM grows the LBM domain with the rank count (fixed
// rows per rank), the weak-scaling counterpart of Figure 3's strong
// scaling: per-iteration time should stay near-flat.
func BenchmarkWeakScalingLBM(b *testing.B) {
	const rowsPerRank, width, iters = 16, 128, 10
	for _, ranks := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("ranks=%d", ranks), func(b *testing.B) {
			p := struct{ w, h int }{width, rowsPerRank * ranks}
			for i := 0; i < b.N; i++ {
				err := mpi.Launch(ranks, func(c *mpi.Comm) error {
					sim, err := lbmNewParallel(c, p.w, p.h)
					if err != nil {
						return err
					}
					for it := 0; it < iters; it++ {
						if err := sim.Step(); err != nil {
							return err
						}
					}
					return nil
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// lbmNewParallel builds the standard benchmark flow at the given size.
func lbmNewParallel(c *mpi.Comm, w, h int) (*lbm.Parallel, error) {
	return lbm.NewParallel(c, lbm.Params{
		Width: w, Height: h,
		Viscosity:     0.02,
		InletVelocity: 0.1,
		Barrier:       lbm.CylinderBarrier(w/4, h/2, h/9),
	})
}

// BenchmarkRenderBrickScaling measures the software DVR per brick size.
func BenchmarkRenderBrickScaling(b *testing.B) {
	for _, side := range []int{32, 64} {
		b.Run(fmt.Sprintf("%d3", side), func(b *testing.B) {
			box := grid.Box3(0, 0, 0, side, side, side)
			vals := make([]float32, box.Volume())
			for i := range vals {
				vals[i] = float32(i%256) / 255
			}
			brick := render.Brick{Box: box, Values: vals}
			b.SetBytes(int64(box.Volume()) * 4)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := render.RenderBrick(brick, render.CTTransfer); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
