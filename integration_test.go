package ddr_bench

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ddr/internal/bov"
	"ddr/internal/experiments"
	"ddr/internal/mpi"
	"ddr/internal/tiff"
	"ddr/internal/vtk"
)

// TestEndToEndConversionPipeline chains the full data path the paper's
// introduction motivates: a TIFF slice stack is generated, converted in
// parallel (every image decoded once, DDR reshaping pixels into write
// slabs) into one shared bov volume, checksummed, and exported to a
// ParaView-loadable VTK file whose payload matches the stack.
func TestEndToEndConversionPipeline(t *testing.T) {
	const w, h, d, procs = 32, 24, 18, 6
	dir := t.TempDir()
	stackDir := filepath.Join(dir, "stack")
	if err := tiff.WriteStack(stackDir, w, h, d, 8, tiff.FormatUint); err != nil {
		t.Fatal(err)
	}
	info, err := tiff.ProbeStack(stackDir)
	if err != nil {
		t.Fatal(err)
	}
	bovPath := filepath.Join(dir, "vol.bov")
	err = mpi.Launch(procs, func(c *mpi.Comm) error {
		_, err := experiments.ConvertStackToBOV(c, info, bovPath)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}

	v, err := bov.Open(bovPath)
	if err != nil {
		t.Fatal(err)
	}
	sum1, err := v.Checksum()
	if err != nil {
		t.Fatal(err)
	}
	full, err := v.ReadBox(v.Header().Domain())
	if err != nil {
		t.Fatal(err)
	}
	v.Close()

	// Volume content equals the stack, slice by slice.
	for z := 0; z < d; z++ {
		img, err := tiff.ReadFile(tiff.SlicePath(stackDir, z))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(full[z*w*h:(z+1)*w*h], img.Pixels) {
			t.Fatalf("slice %d differs after conversion", z)
		}
	}
	if sum1 == 0 {
		t.Log("checksum is zero; legal but suspicious for synthetic data")
	}

	vtkPath := filepath.Join(dir, "vol.vtk")
	if err := vtk.ExportBOV(bovPath, vtkPath, "density"); err != nil {
		t.Fatal(err)
	}
	out, err := os.ReadFile(vtkPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(out), "DIMENSIONS 32 24 18") {
		t.Error("VTK header lost the geometry")
	}
	// 1-byte samples are written unswapped: the VTK payload tail must
	// equal the volume tail.
	if !bytes.Equal(out[len(out)-len(full):], full) {
		t.Error("VTK payload differs from volume")
	}
}

// TestRealTIFFStudySmall runs the measured loading study end to end at
// one small scale, checking the bookkeeping that EXPERIMENTS.md reports.
func TestRealTIFFStudySmall(t *testing.T) {
	dir := t.TempDir()
	if err := tiff.WriteStack(dir, 48, 24, 16, 16, tiff.FormatUint); err != nil {
		t.Fatal(err)
	}
	rows, err := experiments.RunRealTIFFStudy(dir, []int{8})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows, want 3 techniques", len(rows))
	}
	byName := map[string]experiments.RealStudyRow{}
	for _, r := range rows {
		byName[r.Technique] = r
	}
	// Baseline: all 8 ranks read the 8 images intersecting their brick
	// (nz=2 layers over 16 slices), so each image is decoded p/nz = 4
	// times — 64 reads total. DDR reads each image exactly once.
	if byName["no-ddr"].ImagesRead != 64 {
		t.Errorf("baseline read %d images, want 64", byName["no-ddr"].ImagesRead)
	}
	for _, tech := range []string{"ddr-round-robin", "ddr-consecutive"} {
		if byName[tech].ImagesRead != 16 {
			t.Errorf("%s read %d images, want 16", tech, byName[tech].ImagesRead)
		}
		if byName[tech].CommTime <= 0 {
			t.Errorf("%s missing comm time", tech)
		}
	}
	var sb strings.Builder
	experiments.WriteRealStudy(&sb, rows)
	if !strings.Contains(sb.String(), "ddr-consecutive") {
		t.Error("study table missing rows")
	}
}
