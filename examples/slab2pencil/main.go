// slab2pencil: a 3D redistribution motif common in spectral codes (and
// the general pattern DDR automates): a volume decomposed into z-slabs is
// redistributed into x-pencils, as a multi-dimensional FFT would need
// between its transform stages. The mapping is set up once and replayed
// for several "time steps" of fresh data — the paper's dynamic-data
// property.
//
// Run with: go run ./examples/slab2pencil
package main

import (
	"encoding/binary"
	"fmt"
	"math"
	"os"

	"ddr/internal/core"
	"ddr/internal/grid"
	"ddr/internal/mpi"
	"ddr/internal/trace"
)

const (
	nx, ny, nz = 32, 16, 24
	procs      = 8
	steps      = 3
)

// value is the ground-truth field: every rank can recompute what any cell
// must contain at any step.
func value(x, y, z, step int) float64 {
	return float64(step*1_000_000 + z*10_000 + y*100 + x)
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "slab2pencil:", err)
		os.Exit(1)
	}
	fmt.Println("slab-to-pencil redistribution verified for all steps on all ranks")
}

func run() error {
	domain := grid.Box3(0, 0, 0, nx, ny, nz)
	slabs := grid.Slabs(domain, 2, procs)   // z-slabs: full x-y planes
	pencils := grid.Slabs(domain, 0, procs) // x-pencils: full y-z extents
	rec := trace.NewRecorder()

	err := mpi.Launch(procs, func(c *mpi.Comm) error {
		slab := slabs[c.Rank()]
		pencil := pencils[c.Rank()]

		desc, err := core.NewDescriptor(c.Size(), core.Layout3D, core.Float64,
			core.WithValidation(), core.WithTracer(rec))
		if err != nil {
			return err
		}
		// One mapping setup serves every step.
		if err := desc.SetupDataMapping(c, []grid.Box{slab}, pencil); err != nil {
			return err
		}
		if c.Rank() == 0 {
			fmt.Printf("domain %v, %d ranks: slab %v -> pencil %v\n", domain, procs, slab, pencil)
			fmt.Printf("schedule: %v\n", desc.Plan().Stats())
		}

		slabBuf := make([]byte, slab.Volume()*8)
		pencilBuf := make([]byte, pencil.Volume()*8)
		for step := 0; step < steps; step++ {
			// Fresh data each step, same layout.
			i := 0
			for z := 0; z < slab.Dims[2]; z++ {
				for y := 0; y < slab.Dims[1]; y++ {
					for x := 0; x < slab.Dims[0]; x++ {
						v := value(slab.Offset[0]+x, slab.Offset[1]+y, slab.Offset[2]+z, step)
						binary.LittleEndian.PutUint64(slabBuf[8*i:], math.Float64bits(v))
						i++
					}
				}
			}
			if err := desc.ReorganizeData(c, [][]byte{slabBuf}, pencilBuf); err != nil {
				return err
			}
			// Verify every received cell.
			i = 0
			for z := 0; z < pencil.Dims[2]; z++ {
				for y := 0; y < pencil.Dims[1]; y++ {
					for x := 0; x < pencil.Dims[0]; x++ {
						want := value(pencil.Offset[0]+x, pencil.Offset[1]+y, pencil.Offset[2]+z, step)
						got := math.Float64frombits(binary.LittleEndian.Uint64(pencilBuf[8*i:]))
						if got != want {
							return fmt.Errorf("rank %d step %d cell (%d,%d,%d): got %f want %f",
								c.Rank(), step, x, y, z, got, want)
						}
						i++
					}
				}
			}
		}
		return nil
	})
	if err != nil {
		return err
	}
	fmt.Println("\nper-rank span timeline (m=mapping, e=exchange, r=rounds):")
	rec.WriteTimeline(os.Stdout, 64)
	return nil
}
