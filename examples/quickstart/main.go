// Quickstart: the paper's running example E1 (Figure 1 / Algorithm 1 /
// Table I). Four ranks each own two separate 8x1 rows of an 8x8 float32
// domain and need one contiguous 4x4 quadrant. Three calls do the whole
// redistribution:
//
//  1. core.NewDescriptor         — describe the data
//  2. desc.SetupDataMapping      — declare owned and needed regions
//  3. desc.ReorganizeData        — exchange the data
//
// Run with: go run ./examples/quickstart
package main

import (
	"encoding/binary"
	"fmt"
	"math"
	"os"
	"sort"
	"sync"

	"ddr/internal/core"
	"ddr/internal/grid"
	"ddr/internal/mpi"
)

func main() {
	var (
		mu     sync.Mutex
		report = map[int]string{}
	)
	err := mpi.Launch(4, func(c *mpi.Comm) error {
		rank := c.Rank()

		// Each rank owns rows y=rank and y=rank+4 (Algorithm 1, lines 2-4).
		own := []grid.Box{
			grid.Box2(0, rank, 8, 1),
			grid.Box2(0, rank+4, 8, 1),
		}
		// ... and needs one quadrant (lines 5-8).
		right, bottom := rank%2, rank/2
		need := grid.Box2(4*right, 4*bottom, 4, 4)

		// Fill owned rows with value 10*y + x so anyone can verify results.
		ownBufs := make([][]byte, len(own))
		for i, box := range own {
			buf := make([]byte, box.Volume()*4)
			for x := 0; x < 8; x++ {
				v := float32(10*box.Offset[1] + x)
				binary.LittleEndian.PutUint32(buf[4*x:], math.Float32bits(v))
			}
			ownBufs[i] = buf
		}

		// The three DDR calls.
		desc, err := core.NewDescriptor(c.Size(), core.Layout2D, core.Float32, core.WithValidation())
		if err != nil {
			return err
		}
		if err := desc.SetupDataMapping(c, own, need); err != nil {
			return err
		}
		needBuf := make([]byte, need.Volume()*4)
		if err := desc.ReorganizeData(c, ownBufs, needBuf); err != nil {
			return err
		}

		// Render this rank's quadrant for the report.
		out := fmt.Sprintf("rank %d received quadrant %v:\n", rank, need)
		for y := 0; y < 4; y++ {
			for x := 0; x < 4; x++ {
				bits := binary.LittleEndian.Uint32(needBuf[4*(y*4+x):])
				out += fmt.Sprintf(" %4.0f", math.Float32frombits(bits))
			}
			out += "\n"
		}
		stats := desc.Plan().Stats()
		out += fmt.Sprintf("schedule: %v\n", stats)

		mu.Lock()
		report[rank] = out
		mu.Unlock()
		return nil
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
	ranks := make([]int, 0, len(report))
	for r := range report {
		ranks = append(ranks, r)
	}
	sort.Ints(ranks)
	for _, r := range ranks {
		fmt.Println(report[r])
	}
}
