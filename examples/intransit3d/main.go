// intransit3d joins the paper's two use cases into one workflow: a 3D
// Lattice-Boltzmann (D3Q19) simulation of flow past a sphere runs on six
// ranks, streams its speed volume in-transit to two analysis ranks, which
// use DDR to regrid the arriving z-slabs into near-cube rendering bricks
// and volume-render each frame with the software DVR — live volumetric
// monitoring of a running 3D simulation.
//
// Run with: go run ./examples/intransit3d
package main

import (
	"fmt"
	"os"

	"ddr/internal/experiments"
)

func main() {
	out := "intransit3d_frames"
	if err := os.MkdirAll(out, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, "intransit3d:", err)
		os.Exit(1)
	}
	res, err := experiments.RunInTransit3D(experiments.InTransit3DConfig{
		M: 6, N: 2,
		W: 96, H: 48, D: 48,
		Iterations:  400,
		OutputEvery: 80,
		OutDir:      out,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "intransit3d:", err)
		os.Exit(1)
	}
	fmt.Printf("streamed and volume-rendered %d frames of a %s volume\n",
		res.Frames, "96x48x48")
	fmt.Printf("raw volumes would be %.1f MB; rendered JPEG output is %.3f MB (%.2f%% reduction)\n",
		float64(res.RawBytes)/1e6, float64(res.ProcessedBytes)/1e6, res.ReductionPct)
	fmt.Printf("frames written to %s/\n", out)
}
