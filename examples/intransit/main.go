// intransit: use case B at laptop scale. Six simulation ranks run the
// D2Q9 Lattice-Boltzmann channel flow and stream vorticity slabs to two
// analysis ranks, which regrid them with DDR (slabs -> near-square
// rectangles, the paper's Figure 5), render each frame through the
// blue-white-red colormap, and write JPEGs.
//
// Run with: go run ./examples/intransit
package main

import (
	"fmt"
	"os"

	"ddr/internal/experiments"
)

func main() {
	out := "intransit_frames"
	if err := os.MkdirAll(out, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, "intransit:", err)
		os.Exit(1)
	}
	res, err := experiments.RunInTransit(experiments.InTransitConfig{
		M: 6, N: 2,
		GridW: 324, GridH: 130,
		Iterations:  1200,
		OutputEvery: 120,
		OutDir:      out,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "intransit:", err)
		os.Exit(1)
	}
	fmt.Printf("streamed %d frames from 6 sim ranks to 2 analysis ranks\n", res.Frames)
	fmt.Printf("raw float32 output would be %.2f MB; JPEG output is %.3f MB (%.2f%% reduction, paper: 99.38-99.59%%)\n",
		float64(res.RawBytes)/1e6, float64(res.ProcessedBytes)/1e6, res.ReductionPct)
	fmt.Printf("frames written to %s/\n", out)
}
