// heat: an iterative stencil application (Jacobi heat diffusion) whose
// ghost-zone exchange is implemented entirely with DDR via the stencil
// package — the neighbor-exchange pattern the paper contrasts with DIY2,
// expressed as an overlapping-receive redistribution. A hot spot diffuses
// across a 2D plate decomposed into tiles over 6 ranks; the final
// temperature field is rendered to a PNG with the heat colormap.
//
// Run with: go run ./examples/heat
package main

import (
	"fmt"
	"os"
	"sync"

	"ddr/internal/colormap"
	"ddr/internal/fielddata"
	"ddr/internal/grid"
	"ddr/internal/mpi"
	"ddr/internal/stencil"
)

const (
	width, height = 192, 128
	ranks         = 6
	iterations    = 400
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "heat:", err)
		os.Exit(1)
	}
}

func initial(x, y int) float64 {
	if x == 0 {
		return 100 // hot left wall
	}
	cx, cy := 3*width/4, height/2
	if (x-cx)*(x-cx)+(y-cy)*(y-cy) < 100 {
		return 80 // warm spot
	}
	return 0
}

func run() error {
	domain := grid.Box2(0, 0, width, height)
	rows, cols := grid.Factor2(ranks)
	tiles := grid.Grid2D(domain, rows, cols)

	var (
		mu    sync.Mutex
		field = make([]float32, width*height)
	)
	err := mpi.Launch(ranks, func(c *mpi.Comm) error {
		ex, err := stencil.New(c, domain, tiles, 1, 8)
		if err != nil {
			return err
		}
		tile := ex.Tile()
		cur := make([]float64, tile.Volume())
		i := 0
		for y := 0; y < tile.Dims[1]; y++ {
			for x := 0; x < tile.Dims[0]; x++ {
				cur[i] = initial(tile.Offset[0]+x, tile.Offset[1]+y)
				i++
			}
		}
		haloBuf := make([]byte, ex.HaloBytes())
		for it := 0; it < iterations; it++ {
			if err := ex.Exchange(fielddata.Float64Bytes(cur), haloBuf); err != nil {
				return err
			}
			halo := ex.Halo()
			hf := fielddata.BytesFloat64(haloBuf)
			at := func(gx, gy int) float64 {
				return hf[(gy-halo.Offset[1])*halo.Dims[0]+(gx-halo.Offset[0])]
			}
			i = 0
			for y := 0; y < tile.Dims[1]; y++ {
				gy := tile.Offset[1] + y
				for x := 0; x < tile.Dims[0]; x++ {
					gx := tile.Offset[0] + x
					if gx == 0 || gx == width-1 || gy == 0 || gy == height-1 {
						i++
						continue
					}
					cur[i] = 0.25 * (at(gx-1, gy) + at(gx+1, gy) + at(gx, gy-1) + at(gx, gy+1))
					i++
				}
			}
		}
		// Collect tiles at rank 0 for rendering.
		parts, err := c.Gather(0, fielddata.Float64Bytes(cur))
		if err != nil {
			return err
		}
		if c.Rank() != 0 {
			return nil
		}
		mu.Lock()
		defer mu.Unlock()
		for r, part := range parts {
			vals := fielddata.BytesFloat64(part)
			box := tiles[r]
			i := 0
			for y := 0; y < box.Dims[1]; y++ {
				for x := 0; x < box.Dims[0]; x++ {
					field[(box.Offset[1]+y)*width+box.Offset[0]+x] = float32(vals[i])
					i++
				}
			}
		}
		return nil
	})
	if err != nil {
		return err
	}

	img, err := colormap.FieldToImage(field, width, height, 0, 100, colormap.Heat)
	if err != nil {
		return err
	}
	withLegend, err := colormap.WithLegend(img, colormap.Heat)
	if err != nil {
		return err
	}
	f, err := os.Create("heat.png")
	if err != nil {
		return err
	}
	if err := colormap.EncodePNG(f, withLegend); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("diffused %d iterations on %d ranks (%dx%d plate); wrote heat.png\n",
		iterations, ranks, width, height)
	return nil
}
