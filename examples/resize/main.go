// resize: elastic consumer-group malleability. An analysis group of 4
// ranks holds vertical slabs of a 2-D field and rescales mid-stream —
// growing to 6 ranks (two joiners enter with empty sessions), shrinking
// back to 4 (two leavers hand their data off and abandon their
// sessions), then repartitioning the survivors between slab orientations
// — without ever tearing the coupling down.
//
// Each swing goes through Regridder.Resize: the delta compiler diffs the
// old and new need geometries and ships only the bytes whose ownership
// changed; everything still resident is copied locally. The run prints,
// per swing and rank, how much crossed the wire versus stayed put — the
// quantity the incremental plan makes small — and verifies every
// surviving rank's field bit-for-bit after each swing. The closing
// oscillation revisits geometry pairs the compilers have already seen,
// so its later swings are delta-plan cache hits; the final line shows
// the split.
//
// Run with: go run ./examples/resize
package main

import (
	"fmt"
	"os"
	"sync"

	"ddr/internal/core"
	"ddr/internal/grid"
	"ddr/internal/mpi"
	"ddr/internal/transit"
)

const (
	width    = 96
	height   = 64
	maxProcs = 6 // world size: union of every group the session visits
)

// value is the ground truth for cell (x, y): checking the field after a
// resize is just re-evaluating it over the new need box.
func value(x, y int) byte { return byte(7*x + 13*y + 5) }

// fill renders the ground truth into a need buffer.
func fill(need grid.Box, buf []byte) {
	i := 0
	for y := 0; y < need.Dims[1]; y++ {
		for x := 0; x < need.Dims[0]; x++ {
			buf[i] = value(need.Offset[0]+x, need.Offset[1]+y)
			i++
		}
	}
}

// check verifies a need buffer against the ground truth.
func check(need grid.Box, buf []byte) error {
	i := 0
	for y := 0; y < need.Dims[1]; y++ {
		for x := 0; x < need.Dims[0]; x++ {
			if want := value(need.Offset[0]+x, need.Offset[1]+y); buf[i] != want {
				return fmt.Errorf("cell (%d,%d): got %d, want %d",
					need.Offset[0]+x, need.Offset[1]+y, buf[i], want)
			}
			i++
		}
	}
	return nil
}

// needFor is rank r's slab when the group has n active ranks, sliced
// along the given axis (0 = vertical slabs, 1 = horizontal); a rank
// outside the group gets a zero-extent box ("not a member").
func needFor(r, n, axis int) grid.Box {
	if r >= n {
		return grid.Box2(0, 0, 0, 0)
	}
	return grid.Slabs(grid.Box2(0, 0, width, height), axis, n)[r]
}

func main() {
	domain := grid.Box2(0, 0, width, height)
	// One long-lived session per world rank; ranks 4 and 5 start outside
	// the group (zero-extent need) and join at the first resize.
	sessions := make([]*transit.Regridder, maxProcs)
	for r := range sessions {
		desc, err := core.NewDescriptor(4, core.Layout2D, core.Uint8)
		if err != nil {
			fatal(err)
		}
		sessions[r] = transit.NewRegridder(desc, needFor(r, 4, 0))
	}

	fmt.Printf("field %dx%d, starting with 4 consumer ranks\n\n", width, height)
	var mu sync.Mutex
	// swing resizes every session in world (the union of old and new
	// participants) to the n-rank layout sliced along axis.
	swing := func(title string, world, n, axis int) {
		fmt.Printf("%s\n", title)
		err := mpi.Launch(world, func(c *mpi.Comm) error {
			r := c.Rank()
			rg := sessions[r]
			oldNeed, newNeed := rg.Need(), needFor(r, n, axis)

			var oldData []byte
			if !oldNeed.Empty() {
				oldData = make([]byte, oldNeed.Volume())
				fill(oldNeed, oldData) // the state this rank carried in
			}
			var newData []byte
			if !newNeed.Empty() {
				newData = make([]byte, newNeed.Volume())
			}
			rep, err := rg.Resize(c, newNeed, oldData, newData)
			if err != nil {
				return fmt.Errorf("rank %d: %w", r, err)
			}
			if !newNeed.Empty() {
				if err := check(newNeed, newData); err != nil {
					return fmt.Errorf("rank %d after resize: %w", r, err)
				}
			}
			mu.Lock()
			defer mu.Unlock()
			switch {
			case rg.Abandoned():
				fmt.Printf("  rank %d: left the group (handed off %d B)\n",
					r, oldNeed.Volume())
			case oldNeed.Empty():
				fmt.Printf("  rank %d: joined, received %d B over the wire\n",
					r, rep.MovedBytes)
			default:
				fmt.Printf("  rank %d: kept %d B locally, received %d B of %d B need\n",
					r, rep.RetainedBytes, rep.MovedBytes, rep.NeedBytes)
			}
			return nil
		})
		if err != nil {
			fatal(err)
		}
		fmt.Println()
	}

	swing("grow: 4 -> 6 ranks", maxProcs, 6, 0)
	swing("shrink: 6 -> 4 ranks (ranks 4 and 5 leave)", maxProcs, 4, 0)

	// The four survivors now repartition in place, oscillating between
	// vertical and horizontal slabs. Membership is stable, so the second
	// visit to each geometry pair replays the cached delta plan.
	swing("repartition: vertical -> horizontal slabs", 4, 4, 1)
	swing("repartition: horizontal -> vertical slabs", 4, 4, 0)
	swing("repartition again: vertical -> horizontal (cached)", 4, 4, 1)
	swing("repartition again: horizontal -> vertical (cached)", 4, 4, 0)

	hits, misses := sessions[0].ResizeCacheStats()
	fmt.Printf("verified %d cells after every swing; delta-plan cache: %d hits, %d misses\n",
		domain.Volume(), hits, misses)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "resize:", err)
	os.Exit(1)
}
