// fft: a distributed 2D spectral solve on top of the pipelined exchange
// engine. Eight ranks share a 256×256 complex grid as row slabs, take it
// to spectral space with internal/fft's Dist2D (row FFTs, a DDR-driven
// slab→pencil transpose, column FFTs), solve a Poisson problem
// ∇²u = f by one pointwise multiply in spectral space, and come back.
// Both transposes run as multi-round pipelined exchanges — the example
// prints each direction's measured pack/wire/unpack overlap so you can
// see the pipeline at work, and verifies the solve against the
// analytically known solution.
//
// Run with: go run ./examples/fft
package main

import (
	"fmt"
	"math"
	"os"

	"ddr/internal/core"
	"ddr/internal/fft"
	"ddr/internal/mpi"
)

const (
	n      = 256 // grid edge (power of two)
	procs  = 8
	blocks = 4 // chunks per transpose: the exchange rounds the pipeline overlaps
	depth  = 3 // rounds in flight
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "fft:", err)
		os.Exit(1)
	}
}

func run() error {
	overlaps := make([]float64, procs)
	err := mpi.Launch(procs, func(c *mpi.Comm) error {
		d, err := fft.NewDist2D(c, n, blocks, core.WithPipelineDepth(depth))
		if err != nil {
			return err
		}

		// f(x,y) = -8π² sin(2πx/n) sin(2πy/n): the Laplacian of
		// u(x,y) = sin(2πx/n) sin(2πy/n), so the solve must recover u.
		h := n / procs
		rows := d.Rows()
		for i := 0; i < h; i++ {
			y := c.Rank()*h + i
			for x := 0; x < n; x++ {
				k := 2 * math.Pi / float64(n)
				rows[i*n+x] = complex(-2*k*k*math.Sin(k*float64(x))*math.Sin(k*float64(y)), 0)
			}
		}

		if err := d.Forward(c); err != nil {
			return err
		}

		// Divide each spectral mode by -(kx²+ky²), the symbol of the
		// discrete-wavenumber Laplacian; the zero mode stays zero.
		w := n / procs
		pencils := d.Pencils()
		for y := 0; y < n; y++ {
			ky := wavenumber(y)
			for x := 0; x < w; x++ {
				kx := wavenumber(c.Rank()*w + x)
				if kx == 0 && ky == 0 {
					pencils[y*w+x] = 0
					continue
				}
				pencils[y*w+x] /= complex(-(kx*kx + ky*ky), 0)
			}
		}

		if err := d.Inverse(c); err != nil {
			return err
		}

		// Check against the analytic solution.
		var worst float64
		for i := 0; i < h; i++ {
			y := c.Rank()*h + i
			for x := 0; x < n; x++ {
				k := 2 * math.Pi / float64(n)
				want := math.Sin(k*float64(x)) * math.Sin(k*float64(y))
				if diff := math.Abs(real(rows[i*n+x]) - want); diff > worst {
					worst = diff
				}
			}
		}
		if worst > 1e-9 {
			return fmt.Errorf("rank %d: solution off by %g", c.Rank(), worst)
		}

		fwd, _ := d.Descriptors()
		overlaps[c.Rank()] = fwd.LastOverlapRatio()
		return nil
	})
	if err != nil {
		return err
	}

	var sum float64
	for _, o := range overlaps {
		sum += o
	}
	fmt.Printf("poisson solve verified on %d ranks (%d×%d grid, %d-round transposes, depth %d)\n",
		procs, n, n, blocks, depth)
	fmt.Printf("mean forward-transpose overlap ratio: %.2f (share of wire time hidden under pack/unpack)\n",
		sum/procs)
	return nil
}

// wavenumber maps a DFT bin to its signed wavenumber 2πk/n with k in
// (-n/2, n/2].
func wavenumber(bin int) float64 {
	k := bin
	if k > n/2 {
		k -= n
	}
	return 2 * math.Pi * float64(k) / float64(n)
}
