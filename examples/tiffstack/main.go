// tiffstack: use case A end to end at laptop scale. A synthetic CT slice
// stack is generated on disk, loaded in parallel with DDR (each image is
// read and decoded exactly once), redistributed into near-cube bricks,
// volume-rendered in parallel, and compared against the baseline loader
// that decodes every intersecting image on every rank.
//
// Run with: go run ./examples/tiffstack
package main

import (
	"fmt"
	"image"
	"os"
	"path/filepath"
	"sync"
	"time"

	"ddr/internal/colormap"
	"ddr/internal/experiments"
	"ddr/internal/mpi"
	"ddr/internal/render"
	"ddr/internal/tiff"
)

const (
	stackW, stackH, stackD = 192, 96, 48
	procs                  = 8
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "tiffstack:", err)
		os.Exit(1)
	}
}

func run() error {
	dir, err := os.MkdirTemp("", "ddr-stack-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	fmt.Printf("generating %dx%dx%d 16-bit stack in %s...\n", stackW, stackH, stackD, dir)
	if err := tiff.WriteStack(dir, stackW, stackH, stackD, 16, tiff.FormatUint); err != nil {
		return err
	}
	info, err := tiff.ProbeStack(dir)
	if err != nil {
		return err
	}

	var (
		mu    sync.Mutex
		frame *image.RGBA
	)
	for _, cfg := range []struct {
		name string
		load func(c *mpi.Comm) (*experiments.LoadResult, error)
	}{
		{"no-DDR baseline", func(c *mpi.Comm) (*experiments.LoadResult, error) {
			return experiments.LoadStackNoDDR(c, info)
		}},
		{"DDR consecutive", func(c *mpi.Comm) (*experiments.LoadResult, error) {
			return experiments.LoadStackDDR(c, info, experiments.Consecutive)
		}},
		{"DDR round-robin", func(c *mpi.Comm) (*experiments.LoadResult, error) {
			return experiments.LoadStackDDR(c, info, experiments.RoundRobin)
		}},
	} {
		start := time.Now()
		err := mpi.Launch(procs, func(c *mpi.Comm) error {
			res, err := cfg.load(c)
			if err != nil {
				return err
			}
			reads, err := c.AllreduceInt64([]int64{int64(res.ImagesRead)}, mpi.OpSum)
			if err != nil {
				return err
			}
			partial, err := render.RenderBrick(res.Brick, render.CTTransfer)
			if err != nil {
				return err
			}
			img, err := render.GatherComposite(c, 0, partial, info.Width, info.Height)
			if err != nil {
				return err
			}
			if c.Rank() == 0 {
				mu.Lock()
				frame = img
				mu.Unlock()
				fmt.Printf("%-16s total image reads: %3d (stack depth %d)",
					cfg.name, reads[0], info.Depth)
				if res.Stats.Rounds > 0 {
					fmt.Printf("  schedule: %v", res.Stats)
				}
				fmt.Println()
			}
			return nil
		})
		if err != nil {
			return err
		}
		fmt.Printf("%-16s wall time %v\n", cfg.name, time.Since(start).Round(time.Millisecond))
	}

	out := filepath.Join(".", "tiffstack_dvr.png")
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	if err := colormap.EncodePNG(f, frame); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("volume rendering written to %s\n", out)
	return nil
}
