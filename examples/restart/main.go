// restart: checkpoint/restart across different process counts. A volume
// is checkpointed as bricks by 8 ranks into one shared file, then
// restarted by 27 ranks that need their own (different) brick layout.
// Two strategies are compared:
//
//   - direct: every restart rank performs strided reads of exactly its
//     brick (many small positional I/Os);
//   - slab+DDR: every rank reads one contiguous slab (a single large
//     sequential I/O) and DDR redistributes slabs into bricks.
//
// This is the paper's producer-layout vs consumer-layout gap on a file
// substrate instead of a TIFF stack.
//
// Run with: go run ./examples/restart
package main

import (
	"fmt"
	"os"
	"path/filepath"

	"ddr/internal/bov"
	"ddr/internal/experiments"
)

func main() {
	dir, err := os.MkdirTemp("", "ddr-restart-*")
	if err != nil {
		fmt.Fprintln(os.Stderr, "restart:", err)
		os.Exit(1)
	}
	defer os.RemoveAll(dir)

	h := bov.Header{Dims: [3]int{192, 96, 108}, ElemSize: 1, Kind: "uint8 synthetic"}
	res, err := experiments.RunRestartStudy(filepath.Join(dir, "ckpt.bov"), 8, 27, h)
	if err != nil {
		fmt.Fprintln(os.Stderr, "restart:", err)
		os.Exit(1)
	}
	fmt.Printf("checkpoint: %dx%dx%d (%0.1f MB) written by %d ranks, restarted by %d ranks\n",
		h.Dims[0], h.Dims[1], h.Dims[2], float64(h.TotalBytes())/1e6, res.WriteProcs, res.ReadProcs)
	fmt.Printf("direct brick reads: %6d positional I/Os, %v\n", res.DirectRuns, res.DirectTime)
	fmt.Printf("slab reads + DDR:   %6d positional I/Os, %v\n", res.SlabRuns, res.SlabTime)
	if !res.Match {
		fmt.Fprintln(os.Stderr, "restart: strategies disagree!")
		os.Exit(1)
	}
	fmt.Println("both strategies produced identical bricks")
}
